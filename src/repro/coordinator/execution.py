"""Execution backends for the sharded epoch pipeline, and conflict grouping.

:class:`~repro.coordinator.sharding.ShardedSinglePath` splits an epoch into a
*candidate stage* (per-shard, read-only) and a *decision stage* (mutating).
This module provides the worker-pool machinery that runs both stages
concurrently without giving up the bit-for-bit exactness contract of
``tests/test_sharding_equivalence.py``:

* :class:`SerialBackend` — the reference pipeline: every pass runs inline on
  the calling thread, decisions replay global submission order directly.
* :class:`ThreadBackend` — per-shard candidate passes and shard-local
  overlap-structure builds are submitted to a thread pool; decisions commit
  concurrently, one thread per conflict group.
* :class:`ProcessBackend` — candidate passes and overlap builds run in
  persistent worker processes, each holding a replica of every shard's
  start-entry grid index kept in sync through the router's mutation journal
  (halo FSA pools are shipped per epoch and built structures return as
  ordered region lists); decisions commit on an in-process thread pool
  (index mutations must happen where the authoritative state lives).

A third, read-only pass rides the same machinery: the corridor-stitching weld
passes of :meth:`~repro.coordinator.sharding.ShardRouter.stitch_epoch` map
per-shard fragment tasks onto the pool via ``map_stitch_buckets`` (process
workers receive self-contained fragment tuples — no replica or journal
involvement — and return serialized corridor chains).

**Delta shipping.**  Under the default ``delta`` epoch mode the pipeline
ships workers *deltas*, not full epoch state, through the very same backend
API — no backend needs delta awareness:

* *Overlap pools.*  The router's cross-epoch
  :class:`~repro.coordinator.overlaps.OverlapPoolCache` resolves each epoch's
  halo pools first, and only the cache-missed (dirtied) pools reach
  ``map_candidate_buckets``.  Process replicas therefore stop receiving full
  per-epoch pool shipments: an unchanged pool is reused parent-side and
  never crosses the pipe again.  Pool identity is content-addressed
  (fingerprint of the member ``(object_id, FSA)`` tuples in pool order), so
  reuse survives kd rebalances and worker respawns untouched.
* *Weld passes.*  Delta mode never calls ``map_stitch_buckets`` at all: the
  router's :class:`~repro.coordinator.stitching.IncrementalStitcher`
  maintains weld chains under insert/expire events and answers corridor
  queries parent-side, patching only the chains the epoch's membership delta
  touched.  The ``full`` mode path below (and its process-worker ``stitch``
  message) remains the reference implementation the delta answers are pinned
  against bit for bit.
* *Index mutations.*  These were already delta-shipped: the mutation journal
  sends each replica only the insert/delete/renumber ops it is missing.

**Conflict groups.**  The decision stage of Algorithm 2 is sequential: within
an epoch, later objects observe the paths and crossings earlier objects
produced.  :func:`conflict_groups` partitions the epoch's states so that this
ordering only has to be enforced *within* a group.  The *shard footprint* of a
state is the shard owning its SSA start plus every shard its FSA overlaps;
two states conflict when their footprints intersect (or when they carry the
same object id, because duplicate reporters share one candidate set).  Groups
are the connected components of the conflict relation, computed with a
union-find over shard ids.

**Correctness argument** (why replaying submission order inside each group is
exactly equivalent to replaying it globally): every read and write a decision
performs stays inside the *connected component's* shard set — the union of
its member footprints.  A key lemma covers the one endpoint that can leave
the deciding state's own footprint: the Case 3 fabricated vertex is the
centroid of an overlap region that *intersects* the state's FSA, and that
centroid may lie outside the FSA (``candidate_vertex_for`` deliberately uses
the region's own centroid so co-reporters converge on one vertex).

*Lemma (fabricated centroids stay in the component).*  The region is the
intersection of its member reporters' FSAs, so its centroid ``c`` lies inside
**every** member's FSA, putting ``shard(c)`` in every member's footprint; and
the region intersects the adopter's FSA, so any point of that intersection is
a shard shared between the adopter and every member.  Hence the adopter, the
members, and ``shard(c)`` all sit in one union-find component, and any two
states that can adopt (or probe, or credit a crossing at) the same fabricated
vertex are transitively grouped together.

1. *Writes.*  A decision inserts at most one path ``start -> endpoint`` with
   ``start`` the state's SSA start and ``endpoint`` either a point of the
   state's FSA (Case 2 stored end vertices and every degenerate fall-back)
   or a fabricated centroid covered by the lemma; a Case 1 reuse writes
   nothing.  Grid entries land in the shards owning ``start`` and
   ``endpoint`` — both in the component.  Crossings are recorded with the
   chosen path's owner, which is the shard of the path's start vertex; every
   choosable path starts at the state's own SSA start (Case 1 candidates and
   ``_insert_or_reuse`` both require an exact start match), so hotness
   writes also stay in the component.  With duplicate object ids a state may
   adopt the *other* reporter's candidate set, whose paths start at the
   other state's SSA start; unioning duplicate reporters keeps that shard in
   the component too.
2. *Reads.*  Case 1 candidate sets and their co-occurrence boost are computed
   before any decision runs, from the pre-epoch snapshot — identical in the
   serial and grouped replays.  The shard-local FSA overlap structures are
   built at the same barrier and are read-only; each group's decisions
   consult their own shard's structure, which answers exactly like a global
   build at the default adaptive halo (see the halo argument in
   :mod:`repro.coordinator.sharding`), so grouped and serial replays read the
   same regions.  The lemma above is halo-independent: a region's members are
   reporters of this epoch whose FSAs all contain the region, wherever the
   structure holding it was built.  ``end_vertices_in(fsa)`` touches only
   shards overlapping the FSA, and the ``paths_from_into`` reuse probe
   touches the shard of the probed endpoint (an FSA point or a lemma-covered
   centroid).  The one read that can leave the component... cannot: the
   hotness of a path ending inside the FSA but *owned* (started) elsewhere
   cannot be written by another group in the same epoch, because any writer
   must have chosen that path, which requires the path's end vertex to be
   the writer's chosen endpoint — inside the writer's FSA or a fabricated
   centroid, and in both cases the end vertex is a shard shared (directly or
   through the lemma) with the reader, i.e. the writer is in the same group.
3. *Path ids.*  No decision compares the numeric id of a path inserted in the
   same epoch (intra-epoch paths never appear in Case 1 candidate sets, and
   the reuse probe matches on geometry), so groups commit with provisional
   ids and the router renumbers the epoch's insertions in global submission
   order afterwards — reproducing the exact ids the serial replay allocates.

Maintainers: the grouping must remain *component-based*; replacing it with
per-state footprint locking would break the lemma's transitive coverage of
fabricated centroids and race only probabilistically.

Expiry pops are unaffected: per-shard event heaps receive pushes from a
single group per epoch, and heap pops drain in sorted ``(expiry, path_id)``
order regardless of the internal arrangement a rebuild produces.
"""

from __future__ import annotations

import heapq
import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Rectangle
from repro.client.state import ObjectState
from repro.coordinator.columnar import HAVE_NUMPY, ShipmentRing
from repro.coordinator.overlaps import FsaOverlapStructure, build_structures
from repro.coordinator.single_path import CandidatePath, SinglePathDecision
from repro.coordinator.stitching import StitchFragment, weld_runs

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "conflict_groups",
]

#: Names accepted by :func:`create_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES: Tuple[str, ...] = ("serial", "threads", "processes")

#: ``(position, state)`` pairs grouped by owning shard id.
Buckets = Dict[int, List[Tuple[int, ObjectState]]]

#: Distinct halo FSA pools of one epoch's overlap plan, in pool-index order.
OverlapPools = Sequence[Mapping[int, Rectangle]]

#: Per-shard stitch tasks: hot fragments with ownership flags (see
#: :data:`repro.coordinator.stitching.StitchFragment`), grouped by shard id.
StitchTasks = Dict[int, List[StitchFragment]]

#: A conflict group: the positions of its member states, in submission order.
Group = List[int]

#: Decision-stage callback: replays one group, returning ``(position, decision)``.
GroupCommit = Callable[[Group], List[Tuple[int, SinglePathDecision]]]


def _default_workers() -> int:
    """Pool width: one slot per core, but at least two so the concurrent code
    paths are genuinely exercised even on single-core containers."""
    return max(2, min(8, os.cpu_count() or 1))


def _chunk(items: list, chunks: int) -> List[list]:
    """Round-robin ``items`` into at most ``chunks`` non-empty lists.

    Worker tasks carry a chunk rather than a single bucket/group: per-task
    pool overhead is paid ``O(workers)`` times per epoch instead of
    ``O(shards + groups)`` times, which matters for the many small epochs a
    live stream produces.
    """
    if not items:
        return []
    buckets = [items[offset::chunks] for offset in range(min(chunks, len(items)))]
    return buckets


# ---------------------------------------------------------------------------
# Conflict grouping
# ---------------------------------------------------------------------------


def conflict_groups(states: Sequence[ObjectState], grid) -> List[Group]:
    """Partition an epoch's states into independently committable groups.

    ``grid`` is the router's :class:`~repro.coordinator.sharding.ShardGrid`.
    Two states land in the same group when their shard footprints (owner of
    the SSA start plus all shards overlapped by the FSA) intersect, or when
    they report the same object id.  Groups list member positions in
    submission order; the group list itself is ordered by first member, so
    the partition is deterministic.
    """
    parent: Dict[int, int] = {}

    def find(shard_id: int) -> int:
        root = shard_id
        while parent[root] != root:
            root = parent[root]
        while parent[shard_id] != root:
            parent[shard_id], shard_id = root, parent[shard_id]
        return root

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    anchors: List[int] = []
    object_anchor: Dict[int, int] = {}
    for position, state in enumerate(states):
        anchor = grid.shard_id_of(state.start)
        shard_ids = {anchor}
        shard_ids.update(grid.shard_ids_overlapping(state.fsa))
        for shard_id in shard_ids:
            parent.setdefault(shard_id, shard_id)
        for shard_id in shard_ids:
            union(anchor, shard_id)
        previous = object_anchor.get(state.object_id)
        if previous is not None:
            union(anchor, previous)
        object_anchor[state.object_id] = anchor
        anchors.append(anchor)

    groups: Dict[int, Group] = {}
    for position, anchor in enumerate(anchors):
        groups.setdefault(find(anchor), []).append(position)
    return sorted(groups.values(), key=lambda group: group[0])


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ExecutionBackend(ABC):
    """How the sharded epoch pipeline maps its stages onto workers.

    ``map_candidate_buckets`` runs the read-only stage-2 worker pass: the
    per-shard Case 1 candidate scans *and* the shard-local FSA overlap
    structure builds (one per distinct halo pool of the epoch's overlap
    plan — under ``delta`` epoch mode the pipeline pre-filters this argument
    to the cache-missed pools only, so backends always build exactly what
    they are handed); ``map_decision_groups`` replays the decision stage
    over conflict groups.  Backends with ``parallel_decisions = False`` never receive the
    latter call — the pipeline replays global submission order inline.
    ``needs_journal`` tells the router whether to record its mutation journal
    (only the process backend consumes it).
    """

    name: str = "abstract"
    parallel_decisions: bool = False
    needs_journal: bool = False

    @abstractmethod
    def map_candidate_buckets(
        self,
        router,
        buckets: Buckets,
        states: Sequence[ObjectState],
        overlap_pools: OverlapPools = (),
    ) -> Tuple[List[Optional[List[CandidatePath]]], List[FsaOverlapStructure]]:
        """Return every state's candidate set (by position) and one built
        overlap structure per pool (by pool index)."""

    def map_decision_groups(
        self, groups: List[Group], commit: GroupCommit
    ) -> List[List[Tuple[int, SinglePathDecision]]]:
        """Commit every conflict group, returning the per-group decision lists."""
        raise NotImplementedError(f"{self.name} backend does not parallelise decisions")

    def map_stitch_buckets(self, router, tasks: StitchTasks) -> List[List[int]]:
        """Run the per-shard weld passes of the corridor-stitching merge.

        Each task holds one shard's hot fragments (with ownership flags); the
        pass is read-only and returns every shard's weld runs — serialized
        corridor chains whose consecutive pairs are the shard's welds (see
        :func:`repro.coordinator.stitching.weld_runs`).  The default maps the
        tasks inline; pool backends override to spread them over workers.
        """
        runs: List[List[int]] = []
        for shard_id in tasks:
            runs.extend(weld_runs(tasks[shard_id]))
        return runs

    def close(self) -> None:
        """Release pool resources; the backend may be lazily revived afterwards."""

    def on_rebalance(self, fleet_update: Optional[dict] = None) -> None:
        """The router migrated its fleet to a new partition.

        Backends reading live router state (serial, threads) need no action;
        backends holding replicated state (processes) must react — the shard
        bounds, record placement and load-aware worker assignment may all
        have changed, and the router reset its journal.  ``fleet_update``
        (when provided) describes the migration: ``unchanged`` is the set of
        shard ids whose replica-visible state is identical across it,
        ``num_shards`` the new fleet size and ``loads`` the new per-shard
        record counts — enough for a replicating backend to keep untouched
        replicas alive and respawn or retire the rest lazily.  ``None``
        means "assume everything changed".
        """

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def _candidates_inline(
        router, buckets: Buckets, states: Sequence[ObjectState]
    ) -> List[Optional[List[CandidatePath]]]:
        per_state: List[Optional[List[CandidatePath]]] = [None] * len(states)
        for shard_id, bucket in buckets.items():
            strategy = router.shards[shard_id].strategy
            for position, state in bucket:
                per_state[position] = strategy.candidate_paths(state)
        return per_state


class SerialBackend(ExecutionBackend):
    """The reference pipeline: everything inline, decisions in global order."""

    name = "serial"
    parallel_decisions = False

    def map_candidate_buckets(self, router, buckets, states, overlap_pools=()):
        per_state = self._candidates_inline(router, buckets, states)
        return per_state, build_structures(
            overlap_pools, kernel=getattr(router, "kernel", "object")
        )


class ThreadBackend(ExecutionBackend):
    """Thread-pool backend: chunked shard buckets and conflict groups.

    The candidate stage is read-only, so per-shard passes are safe to run
    concurrently; the decision stage relies on the conflict-group footprint
    argument in the module docstring (groups touch disjoint shards, and the
    only shared structures — the owner table and per-shard hotness tables —
    are only ever written for keys no other group reads).

    Both stages are pure-Python CPU-bound work, so on a standard CPython
    build the GIL caps this backend at serial throughput — it exists for
    free-threaded (PEP 703) builds, as the decision pool of
    :class:`ProcessBackend`, and as the simplest harness for exercising the
    conflict-group commit machinery.  For multi-core wins on stock CPython
    use ``processes``.
    """

    name = "threads"
    parallel_decisions = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"worker count must be at least 1, got {workers}")
        self._workers = workers if workers is not None else _default_workers()
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-epoch"
            )
        return self._pool

    def map_candidate_buckets(self, router, buckets, states, overlap_pools=()):
        pool = self._ensure_pool()
        per_state: List[Optional[List[CandidatePath]]] = [None] * len(states)
        kernel = getattr(router, "kernel", "object")

        def run_buckets(items):
            answers = []
            for shard_id, bucket in items:
                strategy = router.shards[shard_id].strategy
                answers.extend(
                    (position, strategy.candidate_paths(state)) for position, state in bucket
                )
            return answers

        def run_builds(items):
            built = build_structures(
                [fsa_pool for _index, fsa_pool in items], kernel=kernel
            )
            return [(index, structure) for (index, _), structure in zip(items, built)]

        # Candidate chunks and overlap builds share the pool; both are
        # read-only, so they interleave freely across the workers.
        bucket_futures = [
            pool.submit(run_buckets, chunk)
            for chunk in _chunk(list(buckets.items()), self._workers)
        ]
        build_futures = [
            pool.submit(run_builds, chunk)
            for chunk in _chunk(list(enumerate(overlap_pools)), self._workers)
        ]
        for future in bucket_futures:
            for position, candidates in future.result():
                per_state[position] = candidates
        structures: List[Optional[FsaOverlapStructure]] = [None] * len(overlap_pools)
        for future in build_futures:
            for index, structure in future.result():
                structures[index] = structure
        return per_state, structures

    def map_decision_groups(self, groups, commit):
        pool = self._ensure_pool()

        def run_groups(chunk):
            outcomes = []
            for group in chunk:
                outcomes.extend(commit(group))
            return outcomes

        return list(pool.map(run_groups, _chunk(groups, self._workers)))

    def map_stitch_buckets(self, router, tasks):
        pool = self._ensure_pool()

        def run_tasks(items):
            runs = []
            for _shard_id, fragments in items:
                runs.extend(weld_runs(fragments))
            return runs

        runs: List[List[int]] = []
        for chunk_runs in pool.map(run_tasks, _chunk(list(tasks.items()), self._workers)):
            runs.extend(chunk_runs)
        return runs

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _process_worker_main(connection, shard_configs, snapshot_ops, kernel="object") -> None:
    """Worker loop of :class:`ProcessBackend` (runs in the child process).

    Maintains a replica of the *start-entry* grid index of each shard this
    worker is assigned — the only structure the candidate pass reads —
    bootstrapped from a snapshot of the live records and kept fresh by
    replaying the worker's slice of the router's mutation journal, and
    answers batched ``paths_starting_at`` queries.  It also builds its slice
    of the epoch's shard-local overlap structures from the halo FSA pools the
    parent ships (flat float tuples in pool order) and returns them as
    serialized region lists — region order is part of the answer, because
    first-encountered tie-breaks in the overlap queries depend on it.

    Work shipments arrive either pickled over the pipe (``"work"``, the
    object-kernel reference transport) or as a ``"work_shm"`` header naming
    the parent's shared-memory block (columnar kernel), decoded into the
    exact same python shapes before the common loop below — the transport
    is invisible to the replica logic.
    """
    from repro.core.geometry import Point, Rectangle
    from repro.coordinator.columnar import close_attachments, decode_work_shipment
    from repro.coordinator.grid_index import GridConfig, GridIndex
    from repro.coordinator.overlaps import build_structures as _build_structures
    from repro.coordinator.stitching import weld_runs as _weld_runs
    from repro.core.motion_path import MotionPath, MotionPathRecord

    replicas: Dict[int, GridIndex] = {}
    for shard_id, (b_lx, b_ly, b_hx, b_hy), cells in shard_configs:
        bounds = Rectangle(Point(b_lx, b_ly), Point(b_hx, b_hy))
        replicas[shard_id] = GridIndex(GridConfig(bounds, cells), kernel=kernel)
    attachments: Dict[str, object] = {}

    def apply(ops) -> None:
        for op in ops:
            if op[0] == "i":
                _tag, path_id, shard_id, s_x, s_y, e_x, e_y, created_at = op
                record = MotionPathRecord(
                    path_id, MotionPath(Point(s_x, s_y), Point(e_x, e_y)), created_at
                )
                replicas[shard_id].register(record)
                replicas[shard_id].add_entry(record, is_start=True)
            elif op[0] == "d":
                _tag, path_id, shard_id = op
                record = replicas[shard_id].get(path_id)
                replicas[shard_id].remove_entry(path_id, record.path.start, is_start=True)
                replicas[shard_id].unregister(path_id)
            else:  # ("r", provisional_id, final_id, shard_id): commit renumber
                _tag, old_id, new_id, shard_id = op
                replica = replicas[shard_id]
                record = replica.get(old_id)
                replica.remove_entry(old_id, record.path.start, is_start=True)
                replica.unregister(old_id)
                record.path_id = new_id
                replica.register(record)
                replica.add_entry(record, is_start=True)

    apply(snapshot_ops)
    while True:
        message = connection.recv()
        kind = message[0]
        if kind == "stop":
            close_attachments(attachments)
            connection.close()
            return
        if kind == "stitch":
            # Stitch tasks are self-contained fragment lists (no replica or
            # journal involvement): weld each shard's task, reply with the
            # serialized corridor chains.
            runs = []
            for fragments in message[1]:
                runs.extend(_weld_runs(fragments))
            connection.send(runs)
            continue
        if kind == "work_shm":
            ops, tasks, overlap_tasks = decode_work_shipment(message, attachments)
        else:
            _kind, ops, tasks, overlap_tasks = message
        apply(ops)
        answers = []
        for position, shard_id, s_x, s_y, f_lx, f_ly, f_hx, f_hy in tasks:
            records = replicas[shard_id].paths_starting_at(
                Point(s_x, s_y), Rectangle(Point(f_lx, f_ly), Point(f_hx, f_hy))
            )
            answers.append((position, [record.path_id for record in records]))
        pools = [
            {
                object_id: Rectangle(Point(f_lx, f_ly), Point(f_hx, f_hy))
                for object_id, f_lx, f_ly, f_hx, f_hy in members
            }
            for _pool_index, members in overlap_tasks
        ]
        overlap_answers = [
            (pool_index, structure.serialized())
            for (pool_index, _members), structure in zip(
                overlap_tasks, _build_structures(pools, kernel=kernel)
            )
        ]
        connection.send((answers, overlap_answers))


class ProcessBackend(ExecutionBackend):
    """Process-pool backend: candidate passes on replicated shard indexes.

    Each persistent worker owns replicas of the start-entry indexes of its
    assigned shards — assigned load-aware at spawn time
    (:meth:`assign_shards`: heaviest shard onto the least-loaded worker,
    from the same per-shard record counts the rebalance protocol reads) —
    bootstrapped from a snapshot of the live records at spawn time and fed
    its slice of the router's mutation journal at the start of each epoch
    (replication is cheap: one small tuple per insert or delete, partitioned
    across the pool, and the journal prefix every worker has replayed is
    dropped each epoch).  A partition rebalance discards the fleet
    (:meth:`on_rebalance`); the next epoch respawns it against the migrated
    shards with a fresh assignment.  The parent ships each worker its shard buckets as flat float
    tuples and receives candidate *path ids*; records and hotness are
    attached parent-side from the authoritative index, so replicas never
    need the hotness tables.  Decisions commit on an in-process thread pool —
    they mutate the authoritative state, which only exists in the parent.
    """

    name = "processes"
    parallel_decisions = True
    needs_journal = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"worker count must be at least 1, got {workers}")
        self._requested_workers = workers
        self._processes: List = []
        self._connections: List = []
        self._journal_seqs: List[int] = []
        self._assignment: Dict[int, int] = {}
        self._decision_pool = ThreadBackend(workers)
        self._rings: List[ShipmentRing] = []
        #: Workers respawned after dying (killed, crashed, or restarted
        #: explicitly) — excludes ordinary spawns and rebalance respawns.
        self.worker_restarts = 0
        #: Rebalance outcomes, worker by worker: ``workers_reused`` counts
        #: workers whose replicas survived a migration untouched (their
        #: assigned shards were unchanged, so the fleet kept them alive);
        #: ``workers_respawned`` counts live workers rebuilt lazily because
        #: a migration changed their shards.  A stop-the-world rebalance
        #: tears the whole fleet down and counts under neither.
        self.workers_reused = 0
        self.workers_respawned = 0
        #: Workers marked stale by :meth:`on_rebalance` — their replicas no
        #: longer match the fleet and they are respawned lazily the next
        #: time the pipeline touches them.
        self._stale_workers: set = set()
        #: Epoch shipments delivered through shared memory, and shipments
        #: that fell back to the pickled pipe because the block could not be
        #: (re)allocated.  Respawn and re-answer sends are always pickled —
        #: they are rare, and inline shipping keeps recovery self-contained.
        self.shm_shipments = 0
        self.shm_fallbacks = 0

    # -- worker lifecycle -------------------------------------------------------

    @staticmethod
    def _spawn_context():
        """Fork on Linux (fast, and our workers inherit nothing they use);
        the default context elsewhere (fork is unavailable on Windows and
        unsafe under threads on macOS).  Workers are fully rebuilt from their
        pickled arguments either way."""
        import multiprocessing
        import sys

        if sys.platform.startswith("linux"):
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    @staticmethod
    def assign_shards(
        loads: Sequence[int],
        workers: int,
        previous: Optional[Mapping[int, int]] = None,
    ) -> Dict[int, int]:
        """Load-aware shard→worker assignment (longest-processing-time greedy).

        ``loads[shard_id]`` is the shard's current record count.  Shards are
        placed heaviest-first onto the least-loaded worker, so one hot
        downtown shard no longer drags its modulo-siblings' replicas behind
        it the way the old static ``shard_id % workers`` split did.  Ties
        break by shard id and worker index, making the assignment a
        deterministic function of the load vector.

        ``previous`` pins shards to their existing workers (stability across
        rebalances): pinned shards keep their worker — seeding that worker's
        load — and only the remaining shards are LPT-placed.  Pins naming a
        shard outside ``loads`` or a worker outside the pool are ignored.
        With identical loads and a full pin set the result is exactly
        ``previous``, which is what lets an elastic migration that left a
        worker's shards untouched keep that worker's replicas alive.
        """
        if workers < 1:
            raise ConfigurationError(f"worker count must be at least 1, got {workers}")
        assignment: Dict[int, int] = {}
        # (total load, shards held, worker): the shard count breaks load
        # ties, so a fresh all-zero fleet still spreads round-robin instead
        # of piling every shard onto worker 0.
        totals = [0] * workers
        held = [0] * workers
        if previous:
            for shard_id, worker in sorted(previous.items()):
                if 0 <= shard_id < len(loads) and 0 <= worker < workers:
                    assignment[shard_id] = worker
                    totals[worker] += loads[shard_id]
                    held[worker] += 1
        worker_loads = [
            (totals[worker], held[worker], worker) for worker in range(workers)
        ]
        heapq.heapify(worker_loads)
        for load, shard_id in sorted(
            (
                (load, shard_id)
                for shard_id, load in enumerate(loads)
                if shard_id not in assignment
            ),
            key=lambda item: (-item[0], item[1]),
        ):
            total, count, worker = heapq.heappop(worker_loads)
            assignment[shard_id] = worker
            heapq.heappush(worker_loads, (total + load, count + 1, worker))
        return assignment

    def _ensure_workers(self, router) -> None:
        if self._processes:
            return
        context = self._spawn_context()
        workers = self._requested_workers
        if workers is None:
            workers = _default_workers()
        # More workers than shards would leave the excess holding no
        # replicas, replaying empty journal slices and answering empty
        # epochs forever — clamp instead of spawning dead processes.
        workers = max(1, min(workers, len(router.shards)))
        # Each worker replicates only its assigned shards, so replica memory
        # and journal replay are partitioned, not multiplied, across the
        # pool.  The assignment is load-aware: it balances the shards'
        # current record counts (the same statistics the rebalance protocol
        # reads) and is recomputed whenever the pool respawns — including
        # after a partition migration.
        self._assignment = self.assign_shards(
            [len(shard.index) for shard in router.shards], workers
        )
        shard_configs: List[list] = [[] for _ in range(workers)]
        for shard in router.shards:
            shard_configs[self._assignment[shard.shard_id]].append(
                (
                    shard.shard_id,
                    (
                        shard.index.config.bounds.low.x,
                        shard.index.config.bounds.low.y,
                        shard.index.config.bounds.high.x,
                        shard.index.config.bounds.high.y,
                    ),
                    shard.index.config.cells_per_axis,
                )
            )
        # Bootstrap snapshot of the live records: replicas never need journal
        # history from before the spawn, so the journal can be truncated as
        # soon as every worker has replayed it (see map_candidate_buckets).
        snapshot_ops: List[list] = [[] for _ in range(workers)]
        for path_id, shard in router.owners.items():
            record = shard.index.get(path_id)
            snapshot_ops[self._assignment[shard.shard_id]].append(
                (
                    "i",
                    path_id,
                    shard.shard_id,
                    record.path.start.x,
                    record.path.start.y,
                    record.path.end.x,
                    record.path.end.y,
                    record.created_at,
                )
            )
        journal_seq = len(router.journal)
        kernel = getattr(router, "kernel", "object")
        for worker in range(workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_process_worker_main,
                args=(child_conn, shard_configs[worker], snapshot_ops[worker], kernel),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._connections.append(parent_conn)
            self._journal_seqs.append(journal_seq)
            self._rings.append(ShipmentRing())

    def _worker_of(self, shard_id: int) -> int:
        return self._assignment[shard_id]

    # -- worker fault handling --------------------------------------------------

    @property
    def worker_count(self) -> int:
        """Number of spawned worker processes (0 before the first epoch)."""
        return len(self._processes)

    def workers_alive(self) -> List[bool]:
        """Liveness of each spawned worker, by worker index."""
        return [process.is_alive() for process in self._processes]

    def worker_for_shard(self, shard_id: int) -> Optional[int]:
        """The worker replicating ``shard_id`` (``None`` before spawn)."""
        return self._assignment.get(shard_id)

    def kill_worker(self, worker: int) -> None:
        """Fault-injection hook: hard-kill one worker process, no cleanup.

        Leaves the dead process in the fleet exactly as a crash would — the
        next pipeline round trip detects it and respawns (or call
        :meth:`restart_worker` to respawn eagerly).
        """
        if not 0 <= worker < len(self._processes):
            raise ConfigurationError(
                f"no worker {worker}; fleet has {len(self._processes)} workers"
            )
        self._processes[worker].terminate()
        self._processes[worker].join(timeout=5)

    def restart_worker(self, router, shard_id: int) -> int:
        """Respawn the worker replicating ``shard_id``; returns its index.

        The explicit recovery path callable from *outside*
        :meth:`on_rebalance` — the prerequisite for kill-worker fault
        injection.  The replacement worker bootstraps from a snapshot of the
        live router state for its assigned shards (the same journal-replay
        ``apply`` machinery a fresh spawn uses — a snapshot is exactly the
        journal with its dead prefix compacted away) and resumes consuming
        the journal from the current position.  Spawns the whole fleet first
        when no workers are up; safe between pipeline stages because the
        candidate and stitch passes are read-only.
        """
        self._ensure_workers(router)
        worker = self._assignment.get(shard_id)
        if worker is None:
            raise ConfigurationError(
                f"no shard {shard_id}; fleet replicates shards "
                f"{sorted(self._assignment)}"
            )
        self._respawn_worker(worker, router)
        return worker

    def _worker_payload(self, worker: int, router) -> Tuple[list, list]:
        """Shard configs and snapshot ops for one worker's assigned shards.

        Mirrors the bootstrap in :meth:`_ensure_workers`: snapshot ops are
        drawn from ``router.owners`` in insertion order, which is also the
        order a continuously journal-fed replica ends up holding survivors
        in — so a respawned replica answers identically.
        """
        shard_configs = []
        for shard in router.shards:
            if self._assignment[shard.shard_id] != worker:
                continue
            shard_configs.append(
                (
                    shard.shard_id,
                    (
                        shard.index.config.bounds.low.x,
                        shard.index.config.bounds.low.y,
                        shard.index.config.bounds.high.x,
                        shard.index.config.bounds.high.y,
                    ),
                    shard.index.config.cells_per_axis,
                )
            )
        snapshot_ops = []
        for path_id, shard in router.owners.items():
            if self._assignment[shard.shard_id] != worker:
                continue
            record = shard.index.get(path_id)
            snapshot_ops.append(
                (
                    "i",
                    path_id,
                    shard.shard_id,
                    record.path.start.x,
                    record.path.start.y,
                    record.path.end.x,
                    record.path.end.y,
                    record.created_at,
                )
            )
        return shard_configs, snapshot_ops

    def _respawn_worker(self, worker: int, router) -> None:
        """Replace one worker with a fresh process snapshotted from live state."""
        process = self._processes[worker]
        # A live worker replaced because a migration changed its shards is a
        # planned refresh (workers_respawned); a dead one is crash recovery
        # (worker_restarts) whether or not a migration also touched it.
        stale_refresh = worker in self._stale_workers and process.is_alive()
        self._stale_workers.discard(worker)
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)
        try:
            self._connections[worker].close()
        except OSError:  # pragma: no cover - defensive cleanup
            pass
        shard_configs, snapshot_ops = self._worker_payload(worker, router)
        context = self._spawn_context()
        parent_conn, child_conn = context.Pipe()
        replacement = context.Process(
            target=_process_worker_main,
            args=(child_conn, shard_configs, snapshot_ops, getattr(router, "kernel", "object")),
            daemon=True,
        )
        replacement.start()
        child_conn.close()
        self._processes[worker] = replacement
        self._connections[worker] = parent_conn
        # The snapshot already reflects every journaled mutation, so the new
        # replica resumes from the journal's current tail.
        self._journal_seqs[worker] = len(router.journal)
        if stale_refresh:
            self.workers_respawned += 1
        else:
            self.worker_restarts += 1

    @staticmethod
    def _op_shard(op) -> int:
        """The shard a journal op belongs to (position varies by op tag)."""
        return op[3] if op[0] == "r" else op[2]

    # -- pipeline stages --------------------------------------------------------

    def map_candidate_buckets(self, router, buckets, states, overlap_pools=()):
        self._ensure_workers(router)
        journal = router.journal
        journal_length = len(journal)
        tasks_per_worker: List[list] = [[] for _ in self._processes]
        for shard_id, bucket in buckets.items():
            tasks = tasks_per_worker[self._worker_of(shard_id)]
            for position, state in bucket:
                tasks.append(
                    (
                        position,
                        shard_id,
                        state.start.x,
                        state.start.y,
                        state.fsa_low.x,
                        state.fsa_low.y,
                        state.fsa_high.x,
                        state.fsa_high.y,
                    )
                )
        # Overlap builds ride the same round trip: each distinct halo pool is
        # statically assigned to a worker (pool_index % workers) and shipped
        # as flat float tuples; the worker returns the built structure as a
        # serialized region list.
        overlap_tasks_per_worker: List[list] = [[] for _ in self._processes]
        worker_count = len(self._processes)
        for pool_index, fsa_pool in enumerate(overlap_pools):
            overlap_tasks_per_worker[pool_index % worker_count].append(
                (
                    pool_index,
                    [
                        (object_id, fsa.low.x, fsa.low.y, fsa.high.x, fsa.high.y)
                        for object_id, fsa in fsa_pool.items()
                    ],
                )
            )
        # One round trip per worker per epoch: every worker receives its
        # slice of the journal suffix it is missing (keeping all replicas
        # fresh even on idle epochs) together with its shard buckets and
        # overlap pools.  A dead worker (killed, crashed) is respawned from
        # a live-state snapshot first — the snapshot subsumes its journal
        # slice, so the replacement is sent an empty one.  Under the
        # columnar kernel the shipment is packed into the worker's shared
        # block and only a constant-size header crosses the pipe (the
        # header send is the happens-before edge; the worker decodes before
        # answering, so the block is never read and rewritten concurrently).
        use_shm = HAVE_NUMPY and getattr(router, "kernel", "object") == "columnar"
        for worker in range(len(self._connections)):
            if worker in self._stale_workers or not self._processes[worker].is_alive():
                self._respawn_worker(worker, router)
                ops = []
            else:
                ops = [
                    op
                    for op in journal[self._journal_seqs[worker] : journal_length]
                    if self._assignment[self._op_shard(op)] == worker
                ]
            payload = None
            if use_shm:
                try:
                    payload = self._rings[worker].pack(
                        ops, tasks_per_worker[worker], overlap_tasks_per_worker[worker]
                    )
                    self.shm_shipments += 1
                except (OSError, ValueError):
                    # Block (re)allocation failed (e.g. /dev/shm exhausted):
                    # the pickled pipe carries identical content, so degrade
                    # per-shipment and keep counting.
                    self.shm_fallbacks += 1
            if payload is None:
                payload = (
                    "work", ops, tasks_per_worker[worker], overlap_tasks_per_worker[worker]
                )
            try:
                self._connections[worker].send(payload)
            except (BrokenPipeError, OSError):
                self._respawn_worker(worker, router)
                self._connections[worker].send(
                    ("work", [], tasks_per_worker[worker], overlap_tasks_per_worker[worker])
                )
            self._journal_seqs[worker] = journal_length
        # Every replica has now replayed its slice of the journal prefix, and
        # freshly spawned workers bootstrap from a snapshot instead of
        # history — so the prefix is dead and the journal stays bounded by
        # epoch churn.
        del journal[:journal_length]
        self._journal_seqs = [seq - journal_length for seq in self._journal_seqs]
        per_state: List[Optional[List[CandidatePath]]] = [None] * len(states)
        structures: List[Optional[FsaOverlapStructure]] = [None] * len(overlap_pools)
        index, hotness = router.index, router.hotness
        kernel = getattr(router, "kernel", "object")
        for worker in range(len(self._connections)):
            try:
                answers, overlap_answers = self._connections[worker].recv()
            except (EOFError, OSError):
                # The worker died after accepting the work message.  The
                # candidate pass is read-only and pre-commit, so a respawn
                # from the live snapshot can safely re-answer the same tasks
                # (its snapshot subsumes the journal slice already sent).
                self._respawn_worker(worker, router)
                self._connections[worker].send(
                    ("work", [], tasks_per_worker[worker], overlap_tasks_per_worker[worker])
                )
                answers, overlap_answers = self._connections[worker].recv()
            for position, path_ids in answers:
                per_state[position] = [
                    CandidatePath(index.get(path_id), hotness.hotness(path_id) + 1)
                    for path_id in path_ids
                ]
            for pool_index, regions in overlap_answers:
                structures[pool_index] = FsaOverlapStructure.from_serialized(
                    regions, kernel=kernel
                )
        return per_state, structures

    def map_decision_groups(self, groups, commit):
        return self._decision_pool.map_decision_groups(groups, commit)

    def map_stitch_buckets(self, router, tasks):
        """Weld passes in the worker processes, one round trip per epoch.

        Shard tasks follow the load-aware shard→worker assignment.  Fragments are
        shipped whole (id, endpoints, ownership flags), so replica freshness
        is irrelevant and the journal is untouched; workers answer with their
        shards' weld runs.
        """
        self._ensure_workers(router)
        worker_count = len(self._processes)
        tasks_per_worker: List[list] = [[] for _ in range(worker_count)]
        for shard_id, fragments in tasks.items():
            tasks_per_worker[self._worker_of(shard_id)].append(fragments)
        for worker in range(worker_count):
            if worker in self._stale_workers or not self._processes[worker].is_alive():
                self._respawn_worker(worker, router)
            try:
                self._connections[worker].send(("stitch", tasks_per_worker[worker]))
            except (BrokenPipeError, OSError):
                self._respawn_worker(worker, router)
                self._connections[worker].send(("stitch", tasks_per_worker[worker]))
        runs: List[List[int]] = []
        for worker in range(worker_count):
            try:
                runs.extend(self._connections[worker].recv())
            except (EOFError, OSError):
                # Stitch tasks are self-contained and read-only: respawn and
                # re-ask the same question.
                self._respawn_worker(worker, router)
                self._connections[worker].send(("stitch", tasks_per_worker[worker]))
                runs.extend(self._connections[worker].recv())
        return runs

    def _shutdown_workers(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("stop",))
                connection.close()
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
        for ring in self._rings:
            ring.close(unlink=True)
        self._processes = []
        self._connections = []
        self._journal_seqs = []
        self._assignment = {}
        self._rings = []
        self._stale_workers = set()

    def on_rebalance(self, fleet_update: Optional[dict] = None) -> None:
        """React to a partition migration without tearing down untouched replicas.

        Without a ``fleet_update`` (stop-the-world rebalance, or no fleet is
        up yet) the whole replica fleet is discarded; the next epoch respawns
        workers from a snapshot of the migrated shards (the router reset its
        journal, so no stale pre-migration op can reach a fresh replica).

        With a ``fleet_update`` (elastic migration handoff) the backend keeps
        every worker whose assigned shard set is exactly its old one and lies
        entirely inside ``fleet_update["unchanged"]`` — those replicas are
        bit-identical to the migrated state, so they merely rewind their
        journal cursor to the cleared journal's start.  Every other worker is
        marked stale and rebuilt lazily on the next pipeline round trip
        (``workers_respawned``); if the worker-count clamp against the new
        shard count changes, the whole fleet is retired instead.  The
        in-process decision pool holds no state and stays up either way.
        """
        if not self._processes or fleet_update is None:
            self._shutdown_workers()
            return
        workers = self._requested_workers
        if workers is None:
            workers = _default_workers()
        workers = max(1, min(workers, fleet_update["num_shards"]))
        if workers != len(self._processes):
            self._shutdown_workers()
            return
        unchanged = fleet_update["unchanged"]
        loads = fleet_update["loads"]
        previous = {
            shard_id: worker
            for shard_id, worker in self._assignment.items()
            if shard_id in unchanged
        }
        old_assignment = self._assignment
        self._assignment = self.assign_shards(loads, workers, previous)
        alive = self.workers_alive()
        self._stale_workers = set()
        for worker in range(workers):
            old_set = {s for s, w in old_assignment.items() if w == worker}
            new_set = {s for s, w in self._assignment.items() if w == worker}
            if alive[worker] and old_set == new_set and new_set <= unchanged:
                # Replicas already match the migrated fleet; the router
                # cleared its journal at handoff, so resume from its start.
                self._journal_seqs[worker] = 0
                self.workers_reused += 1
            else:
                self._stale_workers.add(worker)

    def close(self) -> None:
        self._shutdown_workers()
        self._decision_pool.close()


def create_backend(name: str, workers: Optional[int] = None) -> ExecutionBackend:
    """Instantiate an execution backend by name (see :data:`BACKEND_NAMES`)."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(workers)
    if name == "processes":
        return ProcessBackend(workers)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
