"""First-class per-epoch deltas of the incremental epoch pipeline.

Most epochs of an online deployment change only a small fraction of the hot
set: a handful of crossings arrive, a handful of window events expire, and
everything else — the grid index, the hotness table, the halo overlap pools,
the corridor chains — is byte-identical to the previous epoch.  The classic
pipeline nevertheless pays full-rebuild cost every tick, because each stage
re-derives its inputs from the full state.  In ``epoch_mode="delta"`` the
pipeline instead *emits* what changed — this module's :class:`EpochDelta` —
and every stage consumes the delta:

* unchanged halo overlap pools are reused across epochs
  (:class:`~repro.coordinator.overlaps.OverlapPoolCache`; only the dirtied
  pools are rebuilt, and only those are shipped to process-backend workers);
* corridor chains are maintained incrementally under the epoch's
  insert/expire/weld events
  (:class:`~repro.coordinator.stitching.IncrementalStitcher`; only touched
  chains are re-welded and only their corridor objects rebuilt);
* the delta itself is surfaced on
  :attr:`~repro.coordinator.coordinator.EpochOutcome.delta` so operators,
  benchmarks and the property suite can see incrementality instead of
  inferring it.

**The equality contract.**  The delta mode is an *optimisation*, never an
approximation: every epoch's responses, index contents, hotness values,
overlap answers and corridor report must be bit-for-bit equal to the
``full`` rebuild — enforced per-epoch by the extended differential harnesses
(``tests/test_sharding_equivalence.py``,
``tests/test_stitching_equivalence.py``, ``tests/test_serving_equivalence.py``)
and property-tested against random event sequences in
``tests/test_delta_properties.py``.

**Delta algebra.**  The hot-set membership part of an epoch delta is a pair
``(newly_hot, vanished)`` with disjoint id sets; :func:`apply_membership`
applies it to a membership set and :func:`compose_membership` composes two
consecutive deltas into one.  Composition is associative, and application
distributes over composition (``apply(m, compose(a, b)) == apply(apply(m, a),
b)``) — the claim the property suite checks.  Deltas touching disjoint id
sets commute; deltas in general do not (an id may vanish in one epoch and
return in the next), which is why the pipeline applies them strictly in epoch
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

__all__ = [
    "EPOCH_MODES",
    "EpochDelta",
    "apply_membership",
    "compose_membership",
]

#: Values accepted by the ``epoch_mode`` knob (config layers and
#: ``--epoch-mode``): ``full`` rebuilds every per-epoch structure from the
#: full state (the pre-incremental pipeline, kept as the differential
#: reference); ``delta`` (the default) reuses unchanged halo pools, maintains
#: corridor chains incrementally and ships only deltas to workers — required
#: to stay bit-for-bit equal to ``full``.
EPOCH_MODES: Tuple[str, ...] = ("full", "delta")


@dataclass(frozen=True)
class EpochDelta:
    """Everything one ``run_epoch`` changed, as compact id tuples and counters.

    The id tuples are sorted ascending (a deterministic, backend-independent
    encoding of the underlying event *sets*; per-shard event logs interleave
    nondeterministically across worker threads, their union does not).  An id
    appears once per event, so a path crossed twice in one epoch contributes
    one ``newly_hot`` entry and one ``touched`` entry.

    * ``inserted`` — final ids of the motion paths the epoch's decisions
      inserted, in submission order (parallel commits are renumbered to the
      serial allocation first, so the tuple is backend-independent).
    * ``deleted`` — ids whose records were evicted from the grid index at the
      epoch boundary (always a subset of ``vanished``: eviction is driven by
      hotness reaching zero).
    * ``newly_hot`` / ``touched`` — crossings recorded this epoch that took a
      path's hotness ``0 -> 1`` respectively ``n -> n+1`` (``n >= 1``).
    * ``decayed`` / ``vanished`` — window expiries that left the path hot
      respectively dropped it to hotness zero.
    * ``renumbered`` — provisional ids renamed by the parallel-commit
      renumbering (0 on the serial backend).
    * ``pools_total`` .. ``pools_rebuilt`` — the epoch's halo overlap pools:
      how many were reused verbatim from the cross-epoch pool cache, resumed
      from a cached prefix, or rebuilt from scratch (the only ones shipped to
      workers).  ``pools_total = pools_reused + pools_prefix_reused +
      pools_rebuilt``.
    * ``rebalanced`` — whether the epoch boundary migrated the partition
      (for a budgeted elastic migration, the boundary the handoff completed).
    * ``records_migrated`` — records warmed onto the incoming fleet at this
      epoch boundary by an in-flight elastic migration (0 outside elastic
      migrations).  Warming is observable-invisible — the outgoing fleet
      stays authoritative until handoff — so the counter never affects
      :meth:`is_noop`.
    * ``migration_active`` — whether an elastic migration was still mid-flight
      (records warmed but handoff not yet complete) when the epoch ended.
      Like ``records_migrated``, purely diagnostic: a delta that differs only
      in migration counters describes identical observable state.
    """

    timestamp: int
    inserted: Tuple[int, ...] = ()
    deleted: Tuple[int, ...] = ()
    newly_hot: Tuple[int, ...] = ()
    touched: Tuple[int, ...] = ()
    decayed: Tuple[int, ...] = ()
    vanished: Tuple[int, ...] = ()
    renumbered: int = 0
    pools_total: int = 0
    pools_reused: int = 0
    pools_prefix_reused: int = 0
    pools_rebuilt: int = 0
    rebalanced: bool = False
    records_migrated: int = 0
    migration_active: bool = False

    @property
    def membership(self) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """The hot-set membership delta: ``(added, removed)`` id sets.

        ``added`` are the ids that became hot this epoch, ``removed`` the ids
        that stopped being hot.  Expiry runs before the decision stage inside
        ``run_epoch``, and a vanished path's record is evicted before any new
        crossing could revive its id, so the two sets are disjoint.
        """
        return frozenset(self.newly_hot), frozenset(self.vanished)

    def is_noop(self) -> bool:
        """Whether the epoch changed nothing observable (idle tick)."""
        return not (
            self.inserted
            or self.deleted
            or self.newly_hot
            or self.touched
            or self.decayed
            or self.vanished
            or self.renumbered
            or self.rebalanced
        )


def apply_membership(
    members: FrozenSet[int], delta: Tuple[FrozenSet[int], FrozenSet[int]]
) -> FrozenSet[int]:
    """Apply a membership delta ``(added, removed)`` to a membership set.

    The contract the property suite pins: applying an epoch's
    :attr:`EpochDelta.membership` to the previous epoch's hot set yields
    exactly the hot set a full rebuild reports.
    """
    added, removed = delta
    return (members - removed) | added


def compose_membership(
    first: Tuple[FrozenSet[int], FrozenSet[int]],
    second: Tuple[FrozenSet[int], FrozenSet[int]],
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Compose two consecutive membership deltas into one.

    ``apply(m, compose(a, b)) == apply(apply(m, a), b)`` for every membership
    set ``m`` — the later delta wins where the two disagree about an id (it
    observed the state the earlier delta produced).
    """
    first_added, first_removed = first
    second_added, second_removed = second
    return (
        (first_added - second_removed) | second_added,
        (first_removed - second_added) | second_removed,
    )
