"""Workload generation: network-constrained moving objects and scenario builders."""

from repro.workload.noise import UniformNoiseModel, GaussianNoiseModel, NoNoiseModel
from repro.workload.moving_objects import MovingObjectWorkload, WorkloadConfig, ObjectMotionState
from repro.workload.scenarios import (
    linear_corridor_trajectories,
    waypoint_corridor_trajectories,
    converging_event_trajectories,
    evacuation_trajectories,
)

__all__ = [
    "UniformNoiseModel",
    "GaussianNoiseModel",
    "NoNoiseModel",
    "MovingObjectWorkload",
    "WorkloadConfig",
    "ObjectMotionState",
    "linear_corridor_trajectories",
    "waypoint_corridor_trajectories",
    "converging_event_trajectories",
    "evacuation_trajectories",
]
