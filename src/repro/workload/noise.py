"""Positional noise models for the workload generator.

The paper's generator adds *white noise* to object locations: a value chosen
uniformly at random in ``[-err, err]`` is added independently to each
coordinate.  The Gaussian model is provided for the uncertainty-aware
experiments, where clients report a standard deviation along with each
measurement; the no-noise model is useful in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point

__all__ = ["NoiseModel", "NoNoiseModel", "UniformNoiseModel", "GaussianNoiseModel"]


class NoiseModel(Protocol):
    """Protocol of a positional noise model."""

    def perturb(self, point: Point, rng: random.Random) -> Point:
        """Return the measured (noisy) position for a true position."""
        ...

    def reported_sigma(self) -> Tuple[float, float]:
        """Per-axis standard deviation the sensor would report (0 when noiseless)."""
        ...


@dataclass(frozen=True)
class NoNoiseModel:
    """Measurements are exact."""

    def perturb(self, point: Point, rng: random.Random) -> Point:
        return point

    def reported_sigma(self) -> Tuple[float, float]:
        return (0.0, 0.0)


@dataclass(frozen=True)
class UniformNoiseModel:
    """White noise uniform in ``[-err, err]`` on each coordinate (the paper's model)."""

    err: float

    def __post_init__(self) -> None:
        if self.err < 0:
            raise ConfigurationError(f"err must be non-negative, got {self.err}")

    def perturb(self, point: Point, rng: random.Random) -> Point:
        if self.err == 0.0:
            return point
        return Point(
            point.x + rng.uniform(-self.err, self.err),
            point.y + rng.uniform(-self.err, self.err),
        )

    def reported_sigma(self) -> Tuple[float, float]:
        # Standard deviation of U(-err, err) is err / sqrt(3); a sensor
        # characterised by this model would report that figure.
        sigma = self.err / (3.0 ** 0.5)
        return (sigma, sigma)


@dataclass(frozen=True)
class GaussianNoiseModel:
    """Gaussian noise with per-axis standard deviations (for (eps, delta) experiments)."""

    sigma_x: float
    sigma_y: float

    def __post_init__(self) -> None:
        if self.sigma_x < 0 or self.sigma_y < 0:
            raise ConfigurationError(
                f"standard deviations must be non-negative, got ({self.sigma_x}, {self.sigma_y})"
            )

    def perturb(self, point: Point, rng: random.Random) -> Point:
        return Point(
            point.x + (rng.gauss(0.0, self.sigma_x) if self.sigma_x > 0 else 0.0),
            point.y + (rng.gauss(0.0, self.sigma_y) if self.sigma_y > 0 else 0.0),
        )

    def reported_sigma(self) -> Tuple[float, float]:
        return (self.sigma_x, self.sigma_y)
