"""Network-constrained moving-object workload (paper Section 6.1).

Each object starts at a randomly chosen node of the road network.  At every
timestamp a random subset of objects — a fraction ``agility`` of the
population — is allowed to move; a moving object advances a fixed displacement
``s`` along its current link and, whenever it reaches a node, picks the next
link with probability proportional to the link weights (so traffic
concentrates on motorways and highways).  Moving objects take a location
measurement with additive white noise; stationary objects produce no
measurement, so inter-arrival times fluctuate per object exactly as in the
paper's generator.

The workload knows nothing about how the measurements will be consumed; it
simply yields ``(object_id, measurement)`` pairs per timestamp, where the
measurement is a plain :class:`~repro.core.trajectory.TimePoint` or an
:class:`~repro.core.trajectory.UncertainTimePoint` when ``report_uncertainty``
is enabled.  It also records the exact (noise-free) trajectories so tests and
analyses can validate discovered paths against the ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.trajectory import TimePoint, Trajectory, UncertainTimePoint
from repro.network.road_network import RoadLink, RoadNetwork
from repro.workload.noise import NoiseModel, UniformNoiseModel

__all__ = ["WorkloadConfig", "ObjectMotionState", "MovingObjectWorkload"]

Measurement = Union[TimePoint, UncertainTimePoint]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the moving-object workload (defaults follow Table 2).

    ``num_objects`` — population size N.
    ``agility`` — fraction of objects allowed to move at each timestamp (alpha).
    ``displacement`` — distance in metres an object advances per move (s).
    ``positional_error`` — white-noise amplitude in metres (err).
    ``duration`` — number of timestamps to simulate.
    ``report_uncertainty`` — when true, measurements carry the sensor sigma so
    the (epsilon, delta) filter variant can be exercised.
    """

    num_objects: int = 20000
    agility: float = 0.1
    displacement: float = 10.0
    positional_error: float = 1.0
    duration: int = 250
    report_uncertainty: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise ConfigurationError(f"num_objects must be positive, got {self.num_objects}")
        if not 0.0 < self.agility <= 1.0:
            raise ConfigurationError(f"agility must be in (0, 1], got {self.agility}")
        if self.displacement <= 0:
            raise ConfigurationError(f"displacement must be positive, got {self.displacement}")
        if self.positional_error < 0:
            raise ConfigurationError(
                f"positional_error must be non-negative, got {self.positional_error}"
            )
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")


@dataclass
class ObjectMotionState:
    """Where an object currently is on the network."""

    object_id: int
    current_node: int
    link: Optional[RoadLink]
    distance_along: float
    position: Point


class MovingObjectWorkload:
    """Generator of per-timestamp measurement batches for a population of objects."""

    def __init__(
        self,
        network: RoadNetwork,
        config: Optional[WorkloadConfig] = None,
        noise_model: Optional[NoiseModel] = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else WorkloadConfig()
        self.noise_model = (
            noise_model
            if noise_model is not None
            else UniformNoiseModel(self.config.positional_error)
        )
        self._rng = random.Random(self.config.seed)
        self._states: Dict[int, ObjectMotionState] = {}
        self._trajectories: Dict[int, Trajectory] = {}
        self._initialise_objects()

    # -- initialisation ------------------------------------------------------------

    def _initialise_objects(self) -> None:
        node_ids = self.network.node_ids()
        if not node_ids:
            raise ConfigurationError("cannot generate a workload over an empty network")
        for object_id in range(self.config.num_objects):
            node_id = self._rng.choice(node_ids)
            position = self.network.node(node_id).location
            self._states[object_id] = ObjectMotionState(
                object_id=object_id,
                current_node=node_id,
                link=None,
                distance_along=0.0,
                position=position,
            )
            self._trajectories[object_id] = Trajectory(object_id)

    # -- public API -------------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return self.config.num_objects

    def initial_measurements(self, timestamp: int = 0) -> List[Tuple[int, Measurement]]:
        """Initial measurement of every object (used to seed the RayTrace filters)."""
        measurements: List[Tuple[int, Measurement]] = []
        for object_id, state in self._states.items():
            measurements.append((object_id, self._measure(object_id, state.position, timestamp)))
            self._record_truth(object_id, state.position, timestamp)
        return measurements

    def step(self, timestamp: int) -> List[Tuple[int, Measurement]]:
        """Advance the simulation by one timestamp.

        Returns the measurements produced at this timestamp (one per object
        that moved).
        """
        measurements: List[Tuple[int, Measurement]] = []
        for object_id, state in self._states.items():
            if self._rng.random() > self.config.agility:
                continue
            self._advance(state)
            measurements.append((object_id, self._measure(object_id, state.position, timestamp)))
            self._record_truth(object_id, state.position, timestamp)
        return measurements

    def run(self) -> Iterator[Tuple[int, List[Tuple[int, Measurement]]]]:
        """Iterate over ``(timestamp, measurements)`` for the configured duration."""
        yield 0, self.initial_measurements(0)
        for timestamp in range(1, self.config.duration):
            yield timestamp, self.step(timestamp)

    def true_trajectory(self, object_id: int) -> Trajectory:
        """Noise-free trajectory recorded for an object (ground truth)."""
        try:
            return self._trajectories[object_id]
        except KeyError:
            raise ConfigurationError(f"unknown object {object_id}") from None

    def object_state(self, object_id: int) -> ObjectMotionState:
        """Current motion state of an object."""
        try:
            return self._states[object_id]
        except KeyError:
            raise ConfigurationError(f"unknown object {object_id}") from None

    # -- movement ------------------------------------------------------------------------

    def _advance(self, state: ObjectMotionState) -> None:
        """Move the object by one displacement along the network."""
        remaining = self.config.displacement
        # An object may cross a node mid-step; the loop walks the remaining
        # displacement across consecutive links (the paper bounds a step to "at
        # most the opposite end node", which the single-iteration break gives).
        if state.link is None:
            self._choose_link(state)
        if state.link is None:
            return
        link_length = self.network.link_length(state.link.link_id)
        new_distance = state.distance_along + remaining
        if new_distance >= link_length:
            # Arrive at the opposite node; stop there for this step.
            state.current_node = state.link.other_end(state.current_node)
            state.position = self.network.node(state.current_node).location
            state.link = None
            state.distance_along = 0.0
            return
        state.distance_along = new_distance
        state.position = self.network.position_along(
            state.link.link_id, state.current_node, state.distance_along
        )

    def _choose_link(self, state: ObjectMotionState) -> None:
        """Pick the next outgoing link with probability proportional to weight."""
        weighted = self.network.link_choice_weights(state.current_node)
        if not weighted:
            state.link = None
            return
        pick = self._rng.random()
        cumulative = 0.0
        for link, probability in weighted:
            cumulative += probability
            if pick <= cumulative:
                state.link = link
                break
        else:
            state.link = weighted[-1][0]
        state.distance_along = 0.0

    # -- measurement --------------------------------------------------------------------------

    def _measure(self, object_id: int, true_position: Point, timestamp: int) -> Measurement:
        measured = self.noise_model.perturb(true_position, self._rng)
        if not self.config.report_uncertainty:
            return TimePoint(measured, timestamp)
        sigma_x, sigma_y = self.noise_model.reported_sigma()
        return UncertainTimePoint(measured, timestamp, sigma_x, sigma_y)

    def _record_truth(self, object_id: int, position: Point, timestamp: int) -> None:
        trajectory = self._trajectories[object_id]
        if trajectory and trajectory.end_time >= timestamp:
            return
        trajectory.append(TimePoint(position, timestamp))
