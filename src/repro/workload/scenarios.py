"""Hand-crafted trajectory scenarios for examples and tests.

The network workload of :mod:`repro.workload.moving_objects` drives the
paper's evaluation; the scenario builders here produce small, fully
deterministic trajectory sets that exercise the same code paths with known
ground truth, which is what the example applications and many integration
tests need:

* :func:`linear_corridor_trajectories` — several objects travelling the same
  straight corridor with small lateral offsets (the canonical "hot path").
* :func:`converging_event_trajectories` — objects starting from scattered
  positions and converging on a single venue (the targeted-advertising
  motivation of the paper's introduction).
* :func:`evacuation_trajectories` — objects fleeing a danger zone along a few
  escape corridors (the emergency-response motivation).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.trajectory import TimePoint, Trajectory

__all__ = [
    "linear_corridor_trajectories",
    "waypoint_corridor_trajectories",
    "converging_event_trajectories",
    "evacuation_trajectories",
]


def waypoint_corridor_trajectories(
    waypoints: List[Point],
    num_objects: int = 6,
    duration: int = 60,
    lateral_spread: float = 2.0,
    start_stagger: int = 0,
    seed: int = 0,
) -> Dict[int, Trajectory]:
    """Objects following the same polyline corridor defined by ``waypoints``.

    Every object traverses the corridor at constant speed over ``duration``
    timestamps, displaced from the polyline by a small per-object constant
    offset (at most ``lateral_spread`` on each axis).  Because the corridor has
    turns, RayTrace filters report at the turns and the coordinator chains
    motion paths across shared vertices — so the segments after the first turn
    become genuinely hot.  ``start_stagger`` delays each object's departure so
    hotness accumulation does not rely on synchronous movement.
    """
    if len(waypoints) < 2:
        raise ConfigurationError("a corridor needs at least two waypoints")
    if num_objects <= 0:
        raise ConfigurationError(f"num_objects must be positive, got {num_objects}")
    if duration < 2:
        raise ConfigurationError(f"duration must be at least 2, got {duration}")
    rng = random.Random(seed)
    # Cumulative arc length of the corridor polyline.
    segment_lengths = [
        math.hypot(b.x - a.x, b.y - a.y) for a, b in zip(waypoints, waypoints[1:])
    ]
    total_length = sum(segment_lengths)
    if total_length == 0.0:
        raise ConfigurationError("corridor waypoints must not all coincide")

    def point_at(distance: float) -> Point:
        remaining = min(max(distance, 0.0), total_length)
        last_index = len(segment_lengths) - 1
        for index, ((a, b), length) in enumerate(zip(zip(waypoints, waypoints[1:]), segment_lengths)):
            if remaining <= length or index == last_index:
                fraction = 0.0 if length == 0.0 else min(remaining / length, 1.0)
                return Point(a.x + fraction * (b.x - a.x), a.y + fraction * (b.y - a.y))
            remaining -= length
        return waypoints[-1]

    trajectories: Dict[int, Trajectory] = {}
    for object_id in range(num_objects):
        offset_x = rng.uniform(-lateral_spread, lateral_spread)
        offset_y = rng.uniform(-lateral_spread, lateral_spread)
        departure = object_id * start_stagger
        trajectory = Trajectory(object_id)
        for step in range(duration):
            distance = total_length * step / (duration - 1)
            base = point_at(distance)
            trajectory.append(
                TimePoint(Point(base.x + offset_x, base.y + offset_y), departure + step)
            )
        trajectories[object_id] = trajectory
    return trajectories


def linear_corridor_trajectories(
    num_objects: int = 5,
    length: float = 1000.0,
    duration: int = 50,
    lateral_spread: float = 2.0,
    start: Point = Point(0.0, 0.0),
    heading_degrees: float = 0.0,
    start_stagger: int = 0,
    seed: int = 0,
) -> Dict[int, Trajectory]:
    """Objects travelling the same straight corridor at constant speed.

    ``lateral_spread`` is the maximum perpendicular offset of an object from
    the corridor axis; keeping it below the tolerance epsilon guarantees that
    all objects cross the same motion path.  ``start_stagger`` delays each
    object's departure by that many timestamps relative to the previous one,
    which exercises the "hot even when not synchronous" property that
    distinguishes hot motion paths from moving clusters.
    """
    if num_objects <= 0:
        raise ConfigurationError(f"num_objects must be positive, got {num_objects}")
    if duration < 2:
        raise ConfigurationError(f"duration must be at least 2, got {duration}")
    rng = random.Random(seed)
    heading = math.radians(heading_degrees)
    direction = (math.cos(heading), math.sin(heading))
    normal = (-direction[1], direction[0])
    trajectories: Dict[int, Trajectory] = {}
    for object_id in range(num_objects):
        offset = rng.uniform(-lateral_spread, lateral_spread)
        departure = object_id * start_stagger
        trajectory = Trajectory(object_id)
        for step in range(duration):
            timestamp = departure + step
            progress = length * step / (duration - 1)
            x = start.x + direction[0] * progress + normal[0] * offset
            y = start.y + direction[1] * progress + normal[1] * offset
            trajectory.append(TimePoint(Point(x, y), timestamp))
        trajectories[object_id] = trajectory
    return trajectories


def converging_event_trajectories(
    num_objects: int = 10,
    venue: Point = Point(0.0, 0.0),
    spawn_radius: float = 2000.0,
    duration: int = 60,
    num_corridors: int = 4,
    corridor_join_fraction: float = 0.5,
    seed: int = 1,
) -> Dict[int, Trajectory]:
    """Objects converging on a venue along a handful of approach corridors.

    Objects spawn on a circle of radius ``spawn_radius`` around the venue, walk
    towards the nearest of ``num_corridors`` evenly spaced approach corridors,
    merge onto it at ``corridor_join_fraction`` of their journey and then follow
    the shared corridor to the venue — so the corridor segments close to the
    venue become hot.
    """
    if num_objects <= 0 or num_corridors <= 0:
        raise ConfigurationError("num_objects and num_corridors must be positive")
    if duration < 2:
        raise ConfigurationError(f"duration must be at least 2, got {duration}")
    rng = random.Random(seed)
    corridor_angles = [2.0 * math.pi * i / num_corridors for i in range(num_corridors)]
    trajectories: Dict[int, Trajectory] = {}
    for object_id in range(num_objects):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        corridor_angle = min(
            corridor_angles,
            key=lambda corridor: abs(math.atan2(math.sin(angle - corridor), math.cos(angle - corridor))),
        )
        spawn = Point(
            venue.x + spawn_radius * math.cos(angle),
            venue.y + spawn_radius * math.sin(angle),
        )
        join_point = Point(
            venue.x + spawn_radius * (1.0 - corridor_join_fraction) * math.cos(corridor_angle),
            venue.y + spawn_radius * (1.0 - corridor_join_fraction) * math.sin(corridor_angle),
        )
        join_step = max(1, int(duration * corridor_join_fraction))
        trajectory = Trajectory(object_id)
        for step in range(duration):
            if step <= join_step:
                fraction = step / join_step
                x = spawn.x + fraction * (join_point.x - spawn.x)
                y = spawn.y + fraction * (join_point.y - spawn.y)
            else:
                fraction = (step - join_step) / max(1, duration - 1 - join_step)
                x = join_point.x + fraction * (venue.x - join_point.x)
                y = join_point.y + fraction * (venue.y - join_point.y)
            trajectory.append(TimePoint(Point(x, y), step))
        trajectories[object_id] = trajectory
    return trajectories


def evacuation_trajectories(
    num_objects: int = 12,
    danger_zone: Point = Point(0.0, 0.0),
    evacuation_radius: float = 3000.0,
    num_escape_routes: int = 3,
    duration: int = 80,
    spawn_radius: float = 500.0,
    seed: int = 2,
) -> Dict[int, Trajectory]:
    """Objects fleeing a danger zone along a small number of escape routes.

    Objects start scattered near the danger zone and each follows the escape
    route whose bearing is closest to its initial bearing from the zone centre,
    moving radially outwards along that route.  Routes therefore accumulate
    many crossings and become the hot escape corridors the emergency scenario
    in the paper's introduction wants surfaced.
    """
    if num_objects <= 0 or num_escape_routes <= 0:
        raise ConfigurationError("num_objects and num_escape_routes must be positive")
    if duration < 2:
        raise ConfigurationError(f"duration must be at least 2, got {duration}")
    rng = random.Random(seed)
    route_angles = [2.0 * math.pi * i / num_escape_routes for i in range(num_escape_routes)]
    trajectories: Dict[int, Trajectory] = {}
    for object_id in range(num_objects):
        spawn_angle = rng.uniform(0.0, 2.0 * math.pi)
        spawn_distance = rng.uniform(0.0, spawn_radius)
        spawn = Point(
            danger_zone.x + spawn_distance * math.cos(spawn_angle),
            danger_zone.y + spawn_distance * math.sin(spawn_angle),
        )
        route_angle = min(
            route_angles,
            key=lambda route: abs(math.atan2(math.sin(spawn_angle - route), math.cos(spawn_angle - route))),
        )
        route_entry = Point(
            danger_zone.x + spawn_radius * math.cos(route_angle),
            danger_zone.y + spawn_radius * math.sin(route_angle),
        )
        exit_point = Point(
            danger_zone.x + evacuation_radius * math.cos(route_angle),
            danger_zone.y + evacuation_radius * math.sin(route_angle),
        )
        join_step = max(1, duration // 4)
        trajectory = Trajectory(object_id)
        for step in range(duration):
            if step <= join_step:
                fraction = step / join_step
                x = spawn.x + fraction * (route_entry.x - spawn.x)
                y = spawn.y + fraction * (route_entry.y - spawn.y)
            else:
                fraction = (step - join_step) / max(1, duration - 1 - join_step)
                x = route_entry.x + fraction * (exit_point.x - route_entry.x)
                y = route_entry.y + fraction * (exit_point.y - route_entry.y)
            trajectory.append(TimePoint(Point(x, y), step))
        trajectories[object_id] = trajectory
    return trajectories
