"""Served front door for the hot-path coordinator.

The paper describes a client/coordinator *protocol*; this package is the
deployment of it — an asyncio TCP front end accepting location-update
batches from many concurrent clients, an epoch batcher with bounded queues
and backpressure feeding :meth:`Coordinator.run_epoch`, wire encode/decode
for updates and corridor/top-k responses, and a scenario-based load +
deterministic chaos harness that proves the served fleet bit-for-bit equal
to a seed coordinator replaying the same accepted updates.

Layout:

* :mod:`repro.serving.protocol` — newline-delimited JSON wire format and
  the canonical report snapshot used by the equivalence contract;
* :mod:`repro.serving.batcher` — :class:`EpochBatcher`: dedupe,
  backpressure, canonical epoch ordering and the accepted-update log;
* :mod:`repro.serving.server` — :class:`IngestionServer`, the asyncio TCP
  endpoint;
* :mod:`repro.serving.scenarios` — :class:`BaseScenario` registry,
  :class:`InjectionConfig` fault injection and the :class:`ScenarioRunner`.
"""

from repro.serving.batcher import BatchDecision, EpochBatcher
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    coordinator_snapshot,
    decode_message,
    decode_update,
    encode_message,
    encode_update,
)
from repro.serving.scenarios import (
    FAULT_TYPES,
    SCENARIOS,
    BaseScenario,
    InjectionConfig,
    ScenarioResult,
    ScenarioRunner,
    get_scenario,
    replay_accepted_log,
)
from repro.serving.server import IngestionServer, ServingConfig

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "coordinator_snapshot",
    "decode_message",
    "decode_update",
    "encode_message",
    "encode_update",
    "BatchDecision",
    "EpochBatcher",
    "IngestionServer",
    "ServingConfig",
    "FAULT_TYPES",
    "SCENARIOS",
    "BaseScenario",
    "InjectionConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "get_scenario",
    "replay_accepted_log",
]
