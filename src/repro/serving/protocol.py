"""Wire protocol of the served front door.

Messages are newline-delimited JSON objects — one request per line, one
response per line, over a plain TCP stream (the container ships no HTTP
client library, and the paper's protocol is three points and two timestamps
per message; a framed text protocol keeps the encode/decode cost visible
and the server dependency-free).  Every request carries an ``op``:

``batch``
    ``{"op": "batch", "client": C, "seq": S, "updates": [[...9 fields...]]}``
    — a client's location-update batch.  Updates are the flat 9-field form
    of :meth:`ObjectState.as_tuple`.  ``(client, seq)`` identifies the
    batch for dedupe: redelivering an accepted batch is idempotent.  The
    response is ``{"ok": true, "accepted": n, "seq": S}``, with
    ``"duplicate": true`` when the batch was already accepted, or
    ``{"ok": false, "error": "backpressure", ...}`` when the epoch queue is
    full — the client must retry after the next epoch commit.

``tick``
    ``{"op": "tick", "now": T}`` — close the current epoch at boundary
    ``T`` (strictly increasing).  All accepted updates are committed
    through :meth:`Coordinator.run_epoch`; the response carries the epoch
    counters.  Ticks make epoch boundaries explicit and deterministic —
    the harness drives them; a live deployment can enable the wall-clock
    auto-ticker instead (:class:`ServingConfig.auto_epoch_seconds`).

``topk`` / ``corridors``
    Ranked hot-path / composite-corridor reports.

``snapshot``
    The canonical full-state report (:func:`coordinator_snapshot`) — the
    bit-for-bit equivalence artifact: a served coordinator's snapshot must
    equal the snapshot of a seed coordinator that replayed the same
    accepted updates at the same epoch boundaries.

``stats``
    Serving counters: accepted/rejected/duplicate batches, epochs, ingest
    latency quantiles.

All payloads are restricted to JSON scalars, lists and objects, so a
snapshot survives a wire round trip unchanged (Python's JSON float
round-trip is exact), which is what lets the equivalence suites compare
served reports against in-process replays with ``==``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.core.errors import ReproError
from repro.core.geometry import Point
from repro.client.state import ObjectState

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "encode_update",
    "decode_update",
    "encode_scored_path",
    "encode_corridor",
    "coordinator_snapshot",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request line; protects the reader from an unframed
#: client streaming garbage without a newline.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ReproError):
    """Raised when a wire message cannot be decoded or violates the protocol."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Serialize one message as a newline-terminated JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict (must be a JSON object)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(payload).__name__}")
    return payload


def encode_update(state: ObjectState) -> List[Any]:
    """Flatten a state message into its 9-field wire row."""
    return list(state.as_tuple())


def decode_update(fields: Sequence[Any]) -> ObjectState:
    """Rebuild an :class:`ObjectState` from its 9-field wire row."""
    if not isinstance(fields, (list, tuple)) or len(fields) != 9:
        raise ProtocolError(f"update row must have 9 fields, got {fields!r}")
    object_id, s_x, s_y, t_start, f_lx, f_ly, f_hx, f_hy, t_end = fields
    try:
        return ObjectState(
            int(object_id),
            Point(float(s_x), float(s_y)),
            int(t_start),
            Point(float(f_lx), float(f_ly)),
            Point(float(f_hx), float(f_hy)),
            int(t_end),
        )
    except (TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"invalid update row {fields!r}: {exc}") from None


def encode_scored_path(scored) -> List[Any]:
    """One ranked hot path as ``[path_id, hotness, score, sx, sy, ex, ey]``."""
    return [
        scored.path_id,
        scored.hotness,
        scored.score,
        scored.path.start.x,
        scored.path.start.y,
        scored.path.end.x,
        scored.path.end.y,
    ]


def encode_corridor(corridor) -> Dict[str, Any]:
    """One composite corridor: member path ids, merged hotness, summed score."""
    return {
        "path_ids": list(corridor.path_ids),
        "segments": corridor.num_segments,
        "hotness": corridor.hotness,
        "score": corridor.score,
        "start": [corridor.start.x, corridor.start.y],
        "end": [corridor.end.x, corridor.end.y],
    }


def coordinator_snapshot(coordinator, k: int = 10) -> Dict[str, Any]:
    """Canonical, order-independent, JSON-pure snapshot of coordinator state.

    The serving-layer equivalence artifact — the same state the differential
    harnesses in ``tests/test_*_equivalence.py`` compare, restricted to JSON
    types so a snapshot fetched over the wire compares ``==`` against one
    built in-process: sorted index records, the sorted hotness table, the
    top-k under both rankings, and the corridor report.
    """
    records = sorted(
        (
            record.path_id,
            [record.path.start.x, record.path.start.y],
            [record.path.end.x, record.path.end.y],
            record.created_at,
        )
        for record in coordinator.index.records
    )
    return {
        "size": coordinator.index_size(),
        "records": [list(record) for record in records],
        "hotness": [list(item) for item in sorted(coordinator.hotness.items())],
        "pending_events": coordinator.hotness.pending_events,
        "top_k_hotness": [encode_scored_path(s) for s in coordinator.top_k(k)],
        "top_k_score": [encode_scored_path(s) for s in coordinator.top_k(k, by_score=True)],
        "top_k_score_value": coordinator.top_k_score(k),
        "corridors": [encode_corridor(c) for c in coordinator.top_k_corridors(k)],
    }
