"""Epoch batcher: dedupe, backpressure and canonical ordering for serving.

The coordinator's epoch pipeline is deterministic in *submission order* —
the same states submitted in the same order produce bit-for-bit the same
state.  A served front door breaks that for free: many concurrent clients
race their batches onto the socket, so arrival order is an accident of the
network.  :class:`EpochBatcher` restores determinism with three rules:

1. **Dedupe** — a batch is identified by ``(client_id, seq)``; redelivering
   an already-accepted batch (client retry after a lost ack, duplicated
   frame) is acknowledged idempotently and submitted exactly once.
2. **Backpressure** — the pending-update queue is bounded
   (``max_pending_updates``); a batch that would overflow it is *rejected
   whole* — never truncated, never silently dropped — and the client
   retries after the next epoch commit drains the queue.
3. **Canonical epoch order** — at the epoch boundary, the epoch's accepted
   batches are sorted by ``(client_id, seq)`` (stable, so intra-batch
   update order is preserved) before submission.  Any arrival interleaving
   of the same accepted batches therefore produces the same submission
   order, the property the hypothesis suite pins and the reason a served
   fleet under concurrent load stays bit-for-bit equal to a seed
   coordinator replaying the accepted log.

The batcher also keeps that **accepted log** — per epoch, the boundary
timestamp and the canonically-ordered update rows — which is the serving
equivalence contract's replay input, and per-update ingest latency samples
(arrival to epoch commit) for the benchmark table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.client.state import ObjectState
from repro.serving.protocol import encode_update

__all__ = ["BatchDecision", "EpochBatcher", "canonical_order"]


#: One pending batch: (client_id, seq, arrival_time, states).
PendingBatch = Tuple[int, int, float, Tuple[ObjectState, ...]]


@dataclass(frozen=True)
class BatchDecision:
    """Outcome of offering one batch to the batcher."""

    accepted: bool
    count: int = 0
    duplicate: bool = False
    reason: Optional[str] = None

    def as_payload(self) -> Dict[str, Any]:
        """The response fields the server merges into its ack."""
        payload: Dict[str, Any] = {"ok": self.accepted, "accepted": self.count}
        if self.duplicate:
            payload["duplicate"] = True
        if self.reason is not None:
            payload["error"] = self.reason
        return payload


def canonical_order(batches: Sequence[PendingBatch]) -> List[ObjectState]:
    """Flatten an epoch's batches into canonical submission order.

    Sorted by ``(client_id, seq)`` — a batch is one client's atomic unit, so
    no two pending batches share the key — with each batch's internal update
    order preserved.  This is a pure function of the *set* of accepted
    batches: every arrival interleaving maps to the same output.
    """
    ordered: List[ObjectState] = []
    for _client, _seq, _arrival, states in sorted(
        batches, key=lambda batch: (batch[0], batch[1])
    ):
        ordered.extend(states)
    return ordered


class EpochBatcher:
    """Groups accepted client batches into :meth:`Coordinator.run_epoch` calls."""

    def __init__(
        self,
        coordinator,
        max_pending_updates: int = 100_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_pending_updates < 1:
            raise ConfigurationError(
                f"max_pending_updates must be at least 1, got {max_pending_updates}"
            )
        self.coordinator = coordinator
        self.max_pending_updates = max_pending_updates
        self._clock = clock
        self._pending: List[PendingBatch] = []
        self._pending_updates = 0
        self._accepted_seqs: Dict[int, Set[int]] = {}
        self._last_now: Optional[int] = None
        #: Per epoch: ``(now, [9-field update rows in submission order])`` —
        #: the replay input of the serving equivalence contract.
        self.accepted_log: List[Tuple[int, List[List[Any]]]] = []
        #: Arrival→commit latency samples, seconds, one per accepted update.
        self.ingest_latencies: List[float] = []
        self.accepted_batches = 0
        self.duplicate_batches = 0
        self.rejected_batches = 0
        self.accepted_updates = 0
        self.epochs_committed = 0

    # -- intake -----------------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        return self._pending_updates

    def offer(self, client_id: int, seq: int, states: Sequence[ObjectState]) -> BatchDecision:
        """Admit one client batch, or reject it whole under backpressure.

        Dedupe precedes the capacity check: a retry of an already-accepted
        batch is acknowledged even when the queue is full, so a client whose
        ack was lost cannot get wedged behind backpressure.
        """
        seen = self._accepted_seqs.setdefault(client_id, set())
        if seq in seen:
            self.duplicate_batches += 1
            return BatchDecision(accepted=True, count=0, duplicate=True)
        if self._pending_updates + len(states) > self.max_pending_updates:
            self.rejected_batches += 1
            return BatchDecision(accepted=False, reason="backpressure")
        seen.add(seq)
        self._pending.append((client_id, seq, self._clock(), tuple(states)))
        self._pending_updates += len(states)
        self.accepted_batches += 1
        self.accepted_updates += len(states)
        return BatchDecision(accepted=True, count=len(states))

    # -- epoch boundary ---------------------------------------------------------

    def close_epoch(self, now: int):
        """Commit the pending batches as one epoch at boundary ``now``.

        Returns the :class:`~repro.coordinator.coordinator.EpochOutcome`.
        Boundaries must be strictly increasing — the hotness event queue
        advances monotonically — so a stale tick is a protocol violation,
        not a silent no-op.
        """
        if self._last_now is not None and now <= self._last_now:
            raise CoordinatorError(
                f"epoch boundary {now} is not after the previous boundary {self._last_now}"
            )
        batches, self._pending = self._pending, []
        self._pending_updates = 0
        arrival_of: Dict[int, float] = {}
        ordered = canonical_order(batches)
        position = 0
        for _client, _seq, arrival, states in sorted(
            batches, key=lambda batch: (batch[0], batch[1])
        ):
            for _ in states:
                arrival_of[position] = arrival
                position += 1
        for state in ordered:
            self.coordinator.submit_state(state)
        outcome = self.coordinator.run_epoch(now)
        committed = self._clock()
        self.ingest_latencies.extend(
            committed - arrival_of[position] for position in range(len(ordered))
        )
        self.accepted_log.append((now, [encode_update(state) for state in ordered]))
        self._last_now = now
        self.epochs_committed += 1
        return outcome

    # -- reporting --------------------------------------------------------------

    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p99 ingest latency in milliseconds (zeros before any commit)."""
        if not self.ingest_latencies:
            return {"p50_ms": 0.0, "p99_ms": 0.0}
        samples = sorted(self.ingest_latencies)
        def quantile(fraction: float) -> float:
            index = min(len(samples) - 1, int(fraction * len(samples)))
            return samples[index] * 1000.0
        return {"p50_ms": quantile(0.50), "p99_ms": quantile(0.99)}

    def stats(self) -> Dict[str, Any]:
        counters = {
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_batches": self.rejected_batches,
            "accepted_updates": self.accepted_updates,
            "pending_updates": self._pending_updates,
            "epochs": self.epochs_committed,
        }
        counters.update(self.latency_quantiles())
        return counters
