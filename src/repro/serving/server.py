"""Asyncio TCP front end serving the coordinator protocol.

:class:`IngestionServer` is the deployment shape of the paper's protocol:
many concurrent clients hold plain TCP connections and stream
newline-delimited JSON requests (see :mod:`repro.serving.protocol`); the
server feeds accepted batches through one :class:`EpochBatcher` into a
single :class:`Coordinator`.

Concurrency model: the event loop is the serialization point.  Reading and
buffering happen concurrently per connection, but each decoded request is
dispatched synchronously on the loop thread, so batcher admission and epoch
commits are atomic with respect to each other without locks.  An epoch
commit (``tick``) blocks the loop for one ``run_epoch`` — deliberate: the
epoch boundary is a barrier in the paper's protocol, and everything queued
behind it lands in the *next* epoch whatever socket it arrived on.

Epoch driving is explicit by default (clients or the harness send ``tick``
with a strictly-increasing boundary timestamp, keeping runs deterministic
and replayable); a live deployment sets ``auto_epoch_seconds`` to commit
epochs on a wall-clock cadence instead.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.errors import ConfigurationError, ReproError
from repro.serving.batcher import EpochBatcher
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    coordinator_snapshot,
    decode_message,
    decode_update,
    encode_corridor,
    encode_message,
    encode_scored_path,
)

__all__ = ["ServingConfig", "IngestionServer"]


@dataclass(frozen=True)
class ServingConfig:
    """Front-door configuration.

    ``port=0`` binds an ephemeral port (the default — tests and the smoke
    gate read the bound port back).  ``max_pending_updates`` bounds the
    batcher queue (the backpressure knob).  ``auto_epoch_seconds`` enables
    the wall-clock epoch ticker: every interval the server commits an epoch
    advancing the coordinator clock by ``auto_epoch_timestamps``; ``None``
    (default) leaves epoch boundaries to explicit ``tick`` requests.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending_updates: int = 100_000
    auto_epoch_seconds: Optional[float] = None
    auto_epoch_timestamps: int = 10

    def __post_init__(self) -> None:
        if self.auto_epoch_seconds is not None and self.auto_epoch_seconds <= 0:
            raise ConfigurationError(
                f"auto_epoch_seconds must be positive, got {self.auto_epoch_seconds}"
            )
        if self.auto_epoch_timestamps < 1:
            raise ConfigurationError(
                f"auto_epoch_timestamps must be at least 1, got {self.auto_epoch_timestamps}"
            )


class IngestionServer:
    """Serves one coordinator over newline-delimited JSON on TCP."""

    def __init__(self, coordinator, config: ServingConfig = ServingConfig()) -> None:
        self.coordinator = coordinator
        self.config = config
        self.batcher = EpochBatcher(
            coordinator, max_pending_updates=config.max_pending_updates
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._ticker: Optional[asyncio.Task] = None
        self._handlers: set = set()
        self._next_auto_now = config.auto_epoch_timestamps
        self.connections_served = 0
        self.protocol_errors = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        if self.config.auto_epoch_seconds is not None:
            self._ticker = asyncio.get_running_loop().create_task(self._auto_epoch_loop())

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Reap connection handlers still parked in readline (a client that
        # disconnected without the handler observing EOF yet): cancel and
        # await them here so nothing leaks into loop teardown.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message({"ok": False, "error": "line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response = self.handle_line(line)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Cancelled by stop() reaping handlers; exit quietly.
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            # Close without awaiting wait_closed(): when the peer already
            # disconnected, 3.11's wait_closed can hang until loop teardown
            # cancels the handler task (gh-104340); close() alone schedules
            # the transport teardown and lets the handler finish cleanly.
            writer.close()

    # -- request dispatch (synchronous: the loop thread is the serialization
    # point, so admission and commits never interleave) -------------------------

    def handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            return self.dispatch(decode_message(line))
        except ProtocolError as exc:
            self.protocol_errors += 1
            return {"ok": False, "error": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "batch":
            return self._handle_batch(message)
        if op == "tick":
            return self._handle_tick(message)
        if op == "topk":
            k = int(message.get("k", 10))
            paths = self.coordinator.top_k(k, by_score=bool(message.get("by_score", False)))
            return {"ok": True, "paths": [encode_scored_path(s) for s in paths]}
        if op == "corridors":
            k = int(message.get("k", 10))
            corridors = self.coordinator.top_k_corridors(k)
            return {"ok": True, "corridors": [encode_corridor(c) for c in corridors]}
        if op == "snapshot":
            return {"ok": True, "snapshot": coordinator_snapshot(self.coordinator)}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "hello":
            return {"ok": True, "version": PROTOCOL_VERSION}
        raise ProtocolError(f"unknown op {op!r}")

    def _handle_batch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            client_id = int(message["client"])
            seq = int(message["seq"])
            rows = message["updates"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed batch: {exc}") from None
        if not isinstance(rows, list):
            raise ProtocolError("batch updates must be a list")
        states = [decode_update(row) for row in rows]
        decision = self.batcher.offer(client_id, seq, states)
        payload = decision.as_payload()
        payload["seq"] = seq
        return payload

    def _handle_tick(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            now = int(message["now"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed tick: {exc}") from None
        outcome = self.batcher.close_epoch(now)
        return {
            "ok": True,
            "epoch": {
                "timestamp": outcome.timestamp,
                "states_processed": outcome.states_processed,
                "paths_inserted": outcome.paths_inserted,
                "paths_reused": outcome.paths_reused,
                "paths_expired": outcome.paths_expired,
                "rebalanced": outcome.rebalanced,
                "responses": [
                    [r.object_id, r.endpoint.x, r.endpoint.y, r.timestamp]
                    for r in outcome.responses
                ],
            },
        }

    async def _auto_epoch_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.auto_epoch_seconds)
            self.batcher.close_epoch(self._next_auto_now)
            self._next_auto_now += self.config.auto_epoch_timestamps

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = self.batcher.stats()
        stats["connections"] = self.connections_served
        stats["protocol_errors"] = self.protocol_errors
        stats["index_size"] = self.coordinator.index_size()
        return stats
