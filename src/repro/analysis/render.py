"""ASCII rendering of discovered motion paths (stand-in for Figures 9 and 10).

The paper's Figures 9 and 10 draw the discovered motion paths over the Athens
road network, with hotter paths drawn thicker.  The renderer here rasterises
paths onto a character grid, mapping accumulated hotness per cell to a density
ramp, so a terminal (or the benchmark log) shows the same qualitative picture:
the discovered paths trace out the arterial structure of the underlying
network even though the algorithms never see the network itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPathRecord
from repro.network.road_network import RoadNetwork

__all__ = ["AsciiMapRenderer", "render_hot_paths"]

HotPath = Tuple[MotionPathRecord, int]

# Density ramp from cold to hot.
_DENSITY_RAMP = " .:-=+*#%@"


@dataclass
class AsciiMapRenderer:
    """Rasterises segments onto a fixed-size character grid."""

    bounds: Rectangle
    width: int = 80
    height: int = 40

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("renderer dimensions must be positive")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ConfigurationError("renderer bounds must have positive area")

    def render_paths(self, hot_paths: Iterable[HotPath]) -> str:
        """Render hot paths; cell brightness is proportional to accumulated hotness."""
        weights = self._blank()
        for record, hotness in hot_paths:
            self._rasterise(weights, record.path.start, record.path.end, max(hotness, 1))
        return self._to_text(weights)

    def render_network(self, network: RoadNetwork) -> str:
        """Render the ground-truth road network (for side-by-side comparison)."""
        weights = self._blank()
        for link in network.links():
            start = network.node(link.source).location
            end = network.node(link.target).location
            self._rasterise(weights, start, end, link.weight)
        return self._to_text(weights)

    # -- internals --------------------------------------------------------------

    def _blank(self) -> List[List[float]]:
        return [[0.0 for _ in range(self.width)] for _ in range(self.height)]

    def _cell_of(self, point: Point) -> Optional[Tuple[int, int]]:
        if not self.bounds.contains_point(point):
            return None
        col = int((point.x - self.bounds.low.x) / self.bounds.width * (self.width - 1))
        row = int((point.y - self.bounds.low.y) / self.bounds.height * (self.height - 1))
        return (row, col)

    def _rasterise(self, weights: List[List[float]], start: Point, end: Point, weight: float) -> None:
        """Accumulate ``weight`` along the segment using dense sampling."""
        length = start.euclidean_distance_to(end)
        cell_size = min(
            self.bounds.width / self.width, self.bounds.height / self.height
        )
        samples = max(2, int(length / max(cell_size, 1e-9)) * 2)
        last_cell: Optional[Tuple[int, int]] = None
        for index in range(samples + 1):
            fraction = index / samples
            point = Point(
                start.x + fraction * (end.x - start.x),
                start.y + fraction * (end.y - start.y),
            )
            cell = self._cell_of(point)
            if cell is None or cell == last_cell:
                continue
            row, col = cell
            weights[row][col] += weight
            last_cell = cell

    def _to_text(self, weights: List[List[float]]) -> str:
        peak = max((value for row in weights for value in row), default=0.0)
        if peak == 0.0:
            return "\n".join(" " * self.width for _ in range(self.height))
        lines: List[str] = []
        # Row 0 corresponds to the lowest y; render top-down so north is up.
        for row in reversed(weights):
            characters = []
            for value in row:
                level = int(value / peak * (len(_DENSITY_RAMP) - 1))
                characters.append(_DENSITY_RAMP[level])
            lines.append("".join(characters))
        return "\n".join(lines)


def render_hot_paths(
    hot_paths: Sequence[HotPath],
    bounds: Rectangle,
    width: int = 80,
    height: int = 40,
) -> str:
    """Convenience wrapper: render ``hot_paths`` over ``bounds`` at the given size."""
    renderer = AsciiMapRenderer(bounds, width, height)
    return renderer.render_paths(hot_paths)
