"""Analysis utilities: exporting and rendering discovered motion paths."""

from repro.analysis.export import paths_to_csv, paths_to_wkt, write_csv
from repro.analysis.render import AsciiMapRenderer, render_hot_paths
from repro.analysis.statistics import (
    DistributionSummary,
    HotPathStatistics,
    NetworkAlignment,
    hot_path_statistics,
    network_alignment,
    summarise_distribution,
)

__all__ = [
    "paths_to_csv",
    "paths_to_wkt",
    "write_csv",
    "AsciiMapRenderer",
    "render_hot_paths",
    "DistributionSummary",
    "HotPathStatistics",
    "NetworkAlignment",
    "hot_path_statistics",
    "network_alignment",
    "summarise_distribution",
]
