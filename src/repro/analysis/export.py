"""Export discovered motion paths to CSV and WKT.

Figures 9 and 10 of the paper are maps of the discovered motion paths drawn
over the road network.  The reproduction cannot ship a plotting stack, so the
equivalent artefacts are (a) ASCII density maps (:mod:`repro.analysis.render`)
and (b) machine-readable exports produced here, which any GIS tool can load to
recreate the figures exactly (each path becomes a ``LINESTRING`` with its
hotness as an attribute).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.core.motion_path import MotionPathRecord

__all__ = ["paths_to_csv", "paths_to_wkt", "write_csv"]

HotPath = Tuple[MotionPathRecord, int]


def paths_to_csv(hot_paths: Iterable[HotPath]) -> str:
    """Serialise ``(record, hotness)`` pairs to CSV text.

    Columns: path id, start x/y, end x/y, Euclidean length, hotness and score.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["path_id", "start_x", "start_y", "end_x", "end_y", "length", "hotness", "score"]
    )
    for record, hotness in hot_paths:
        writer.writerow(
            [
                record.path_id,
                f"{record.path.start.x:.3f}",
                f"{record.path.start.y:.3f}",
                f"{record.path.end.x:.3f}",
                f"{record.path.end.y:.3f}",
                f"{record.path.length:.3f}",
                hotness,
                f"{hotness * record.path.length:.3f}",
            ]
        )
    return buffer.getvalue()


def paths_to_wkt(hot_paths: Iterable[HotPath]) -> List[str]:
    """Serialise each hot path to a WKT ``LINESTRING`` annotated with its hotness.

    The returned strings have the form ``LINESTRING (x1 y1, x2 y2);hotness=h``
    so they can be bulk-loaded or simply eyeballed.
    """
    lines: List[str] = []
    for record, hotness in hot_paths:
        start, end = record.path.start, record.path.end
        lines.append(
            f"LINESTRING ({start.x:.3f} {start.y:.3f}, {end.x:.3f} {end.y:.3f});hotness={hotness}"
        )
    return lines


def write_csv(hot_paths: Iterable[HotPath], destination: Union[str, Path]) -> Path:
    """Write the CSV export to ``destination`` and return the path written."""
    destination = Path(destination)
    destination.write_text(paths_to_csv(hot_paths))
    return destination
