"""Descriptive statistics over discovered motion paths.

The evaluation section of the paper reports aggregate quantities (index size,
top-k score); when analysing a run it is equally useful to look at the full
distributions — how hotness and path length are distributed, how much of the
total "heat" the few hottest paths capture, and how well the discovered paths
line up with the underlying road network when a ground-truth network is
available (Figures 9/10 make that comparison visually).  This module provides
those summaries as plain data classes so examples, notebooks and tests can use
them without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.motion_path import MotionPathRecord
from repro.network.road_network import RoadNetwork
from repro.baselines.douglas_peucker import perpendicular_distance

__all__ = [
    "DistributionSummary",
    "HotPathStatistics",
    "NetworkAlignment",
    "summarise_distribution",
    "hot_path_statistics",
    "network_alignment",
]

HotPath = Tuple[MotionPathRecord, int]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    p90: float
    total: float

    @classmethod
    def empty(cls) -> "DistributionSummary":
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarise_distribution(values: Sequence[float]) -> DistributionSummary:
    """Summarise a sample of values; an empty sample yields the zero summary."""
    if not values:
        return DistributionSummary.empty()
    ordered = sorted(values)
    n = len(ordered)

    def percentile(fraction: float) -> float:
        if n == 1:
            return ordered[0]
        position = fraction * (n - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, n - 1)
        weight = position - lower
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    return DistributionSummary(
        count=n,
        minimum=ordered[0],
        maximum=ordered[-1],
        mean=sum(ordered) / n,
        median=percentile(0.5),
        p90=percentile(0.9),
        total=sum(ordered),
    )


@dataclass(frozen=True)
class HotPathStatistics:
    """Joint summary of a set of hot motion paths."""

    hotness: DistributionSummary
    length: DistributionSummary
    score: DistributionSummary
    top_decile_heat_share: float

    @property
    def num_paths(self) -> int:
        return self.hotness.count


def hot_path_statistics(hot_paths: Iterable[HotPath]) -> HotPathStatistics:
    """Distributions of hotness, length and score over a hot-path set.

    ``top_decile_heat_share`` is the fraction of the total hotness captured by
    the hottest 10% of paths — a concentration measure: a value close to 1
    means a few very hot corridors dominate, which is exactly the situation
    the top-k query is designed for.
    """
    paths = list(hot_paths)
    hotness_values = [float(hotness) for _, hotness in paths]
    length_values = [record.path.length for record, _ in paths]
    score_values = [hotness * record.path.length for record, hotness in paths]

    share = 0.0
    total_heat = sum(hotness_values)
    if paths and total_heat > 0:
        ordered = sorted(hotness_values, reverse=True)
        decile = max(1, len(ordered) // 10)
        share = sum(ordered[:decile]) / total_heat

    return HotPathStatistics(
        hotness=summarise_distribution(hotness_values),
        length=summarise_distribution(length_values),
        score=summarise_distribution(score_values),
        top_decile_heat_share=share,
    )


@dataclass(frozen=True)
class NetworkAlignment:
    """How well discovered paths align with a ground-truth road network."""

    paths_considered: int
    aligned_paths: int
    mean_endpoint_distance: float
    alignment_tolerance: float

    @property
    def aligned_fraction(self) -> float:
        if self.paths_considered == 0:
            return 0.0
        return self.aligned_paths / self.paths_considered


def network_alignment(
    hot_paths: Iterable[HotPath],
    network: RoadNetwork,
    tolerance: float,
    min_hotness: int = 1,
) -> NetworkAlignment:
    """Measure how close discovered path endpoints are to the (hidden) network.

    A path is *aligned* when both of its endpoints lie within ``tolerance`` of
    some network link.  The algorithms never see the network, so a high
    aligned fraction is evidence that the discovered paths trace real roads
    (the quantitative counterpart of Figure 9).
    """
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    links = [
        (network.node(link.source).location, network.node(link.target).location)
        for link in network.links()
    ]
    if not links:
        raise ConfigurationError("cannot align against an empty network")

    def distance_to_network(point) -> float:
        return min(perpendicular_distance(point, start, end) for start, end in links)

    considered = 0
    aligned = 0
    distance_sum = 0.0
    for record, hotness in hot_paths:
        if hotness < min_hotness:
            continue
        considered += 1
        start_distance = distance_to_network(record.path.start)
        end_distance = distance_to_network(record.path.end)
        distance_sum += (start_distance + end_distance) / 2.0
        if start_distance <= tolerance and end_distance <= tolerance:
            aligned += 1

    mean_distance = distance_sum / considered if considered else 0.0
    return NetworkAlignment(
        paths_considered=considered,
        aligned_paths=aligned,
        mean_endpoint_distance=mean_distance,
        alignment_tolerance=tolerance,
    )
