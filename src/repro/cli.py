"""Command-line interface for running simulations and regenerating experiments.

The CLI wraps the same runners the benchmark suite uses, so a user who just
wants the paper's figures (or a quick simulation summary) does not need to
write any Python:

.. code-block:: console

    python -m repro run --objects 500 --tolerance 10 --duration 150
    python -m repro run --objects 2000 --shards 4 --backend threads
    python -m repro figure7 --scale 0.02
    python -m repro figure8 --scale 0.02 --csv results/
    python -m repro figure9
    python -m repro ablations --csv results/

Every subcommand prints a human-readable table to stdout; ``--csv DIR``
additionally writes machine-readable CSV files.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.statistics import hot_path_statistics
from repro.experiments.ablations import (
    run_communication_ablation,
    run_grid_resolution_ablation,
    run_uncertainty_ablation,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9, run_figure10
from repro.experiments.report import ablation_rows_to_csv, write_experiment_bundle, write_sweep_csv
from repro.core.geometry import Point, Rectangle
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.columnar import KERNELS
from repro.coordinator.delta import EPOCH_MODES
from repro.coordinator.execution import BACKEND_NAMES
from repro.coordinator.partition import PARTITION_KINDS
from repro.coordinator.sharding import ELASTIC_MODES
from repro.coordinator.stitching import STITCHING_MODES, select_top_k_corridors
from repro.network.generator import NetworkConfig
from repro.serving.scenarios import (
    FAULT_TYPES,
    SCENARIOS,
    InjectionConfig,
    ScenarioRunner,
    get_scenario,
    replay_accepted_log,
)
from repro.serving.server import IngestionServer, ServingConfig
from repro.simulation.engine import HotPathSimulation, SimulationConfig

__all__ = ["build_parser", "main"]


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    if args.scale >= 1.0:
        return ExperimentScale(population=1.0, duration=1.0, network_nodes_per_axis=33)
    nodes = max(6, min(33, int(33 * (args.scale ** 0.5) * 2)))
    return ExperimentScale(
        population=args.scale,
        duration=max(0.2, min(1.0, args.scale * 10)),
        network_nodes_per_axis=nodes,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hot motion path discovery (EDBT 2008 reproduction)",
        epilog=(
            "examples:\n"
            "  python -m repro run --objects 500 --tolerance 10 --duration 150\n"
            "  python -m repro run --objects 2000 --shards 4 --backend threads\n"
            "  python -m repro run --shards 16 --backend processes\n"
            "  python -m repro figure8 --scale 0.02 --csv results/\n"
            "run 'python -m repro <command> --help' for per-command options"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run one simulation and print a summary",
        description=(
            "Run one end-to-end simulation (workload, RayTrace filters, coordinator, "
            "baselines) and print a summary with the discovered top-k hot motion paths. "
            "Use --shards to scale the coordinator out into an R x C shard fleet and "
            "--backend to pick how the fleet executes each epoch; every combination is "
            "bit-for-bit equivalent to the paper's central coordinator."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro run --objects 500 --tolerance 10 --duration 150\n"
            "  python -m repro run --objects 2000 --shards 4 --backend threads\n"
            "  python -m repro run --shards 16 --backend processes --top-k 20\n"
            "  python -m repro run --shards 4 --stitching off   # corridors truncate at shard borders"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_parser.add_argument("--objects", type=int, default=500, help="number of moving objects")
    run_parser.add_argument("--tolerance", type=float, default=10.0, help="tolerance epsilon in metres")
    run_parser.add_argument("--delta", type=float, default=0.0, help="uncertainty failure probability")
    run_parser.add_argument("--window", type=int, default=100, help="sliding window W in timestamps")
    run_parser.add_argument("--duration", type=int, default=150, help="simulated timestamps")
    run_parser.add_argument("--epoch", type=int, default=10, help="epoch length in timestamps")
    run_parser.add_argument("--top-k", type=int, default=10, help="number of hot paths to report")
    run_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help=(
            "partition the coordinator into N spatial shards arranged in an R x C grid "
            "(e.g. 4 -> 2x2, 16 -> 4x4); 1 = the paper's central coordinator. "
            "Results are bit-for-bit identical for every value."
        ),
    )
    run_parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="serial",
        help=(
            "epoch execution backend for a sharded coordinator: 'serial' runs shard "
            "passes inline; 'threads' maps them onto a thread pool (GIL-bound on "
            "standard CPython — mainly for free-threaded builds); 'processes' runs "
            "candidate passes in replica-holding worker processes and can use "
            "multiple cores. Decisions commit in parallel over non-conflicting shard "
            "groups on both parallel backends. Every backend returns identical "
            "results. Ignored when --shards is 1."
        ),
    )
    run_parser.add_argument(
        "--partition", choices=PARTITION_KINDS, default="uniform",
        help=(
            "spatial partition of a sharded coordinator: 'uniform' (default) is the "
            "fixed R x C shard grid; 'kd' fits kd splits to endpoint density and "
            "rebalances at epoch boundaries whenever the max/mean shard-load ratio "
            "exceeds --rebalance-threshold, migrating shard state onto the new "
            "splits. Both partitions produce bit-for-bit identical results — 'kd' "
            "only evens out *where* the load lives (see the shard statistics line). "
            "Ignored when --shards is 1."
        ),
    )
    run_parser.add_argument(
        "--rebalance-threshold", type=float, default=2.0, metavar="R",
        help=(
            "max/mean shard-load imbalance ratio above which a kd partition refits "
            "and migrates at the next epoch boundary (must exceed 1.0; default 2.0). "
            "Validated always, but only consulted with --partition kd."
        ),
    )
    run_parser.add_argument(
        "--overlap-halo", type=int, default=None, metavar="H",
        help=(
            "halo of the shard-local FSA overlap structures, in rings of "
            "neighbouring shards (0 = the shard's own FSAs only). Omit for the "
            "adaptive exact halo, which stays bit-for-bit identical to the "
            "central coordinator (below a saturated overlap-region cap); a "
            "fixed halo bounds planning cost but may deviate when FSAs reach "
            "past the ring. Ignored when --shards is 1."
        ),
    )
    run_parser.add_argument(
        "--stitching", choices=STITCHING_MODES, default="exact",
        help=(
            "cross-shard corridor stitching: 'exact' (default) chains hot motion "
            "paths welded end-to-start into composite corridors across shard "
            "boundaries, bit-for-bit equal to the central coordinator's long-path "
            "report; 'off' skips the cross-shard merge, so corridors truncate at "
            "shard boundaries (individual paths are identical either way). With "
            "--shards 1 there are no boundaries and both modes report the full "
            "stitch."
        ),
    )
    run_parser.add_argument(
        "--epoch-mode", choices=EPOCH_MODES, default="delta",
        help=(
            "epoch pipeline: 'delta' (default) makes epoch cost proportional to "
            "what changed — unchanged halo overlap pools are reused across epochs, "
            "corridor chains are maintained incrementally, and only dirtied pools "
            "are shipped to process workers; 'full' rebuilds everything per epoch "
            "(the pre-incremental pipeline). Both modes are bit-for-bit identical "
            "on every result."
        ),
    )
    run_parser.add_argument(
        "--kernel", choices=KERNELS, default="columnar",
        help=(
            "coordinator geometry kernels: 'columnar' (default) runs the "
            "vectorized numpy hot path — SoA grid-cell tables, batched "
            "candidate scans, argmin overlap queries, and shared-memory epoch "
            "shipments to process workers; 'object' is the scalar per-object "
            "reference. Both kernels are bit-for-bit identical on every "
            "result (without numpy, 'columnar' silently degrades to 'object')."
        ),
    )
    run_parser.add_argument(
        "--elastic", choices=ELASTIC_MODES, default="off",
        help=(
            "elastic shard fleet: 'auto' lets the router's cost model grow and "
            "shrink the shard count at epoch boundaries — splitting hot shards, "
            "merging cold sibling shards — between --min-shards and --max-shards; "
            "'off' (default) keeps the fixed --shards count. Elastic runs stay "
            "bit-for-bit identical to the central coordinator. Ignored when "
            "--shards is 1."
        ),
    )
    run_parser.add_argument(
        "--migration-budget", type=int, default=0, metavar="N",
        help=(
            "cap the records any one epoch boundary migrates during a rebalance: "
            "0 (default) migrates stop-the-world; N > 0 warms at most N backfill "
            "records per boundary onto the incoming fleet (plus the epoch's new "
            "inserts) while the outgoing fleet stays authoritative, spreading the "
            "migration over ~records/N boundaries and bounding the per-epoch "
            "latency spike."
        ),
    )
    run_parser.add_argument(
        "--min-shards", type=int, default=None, metavar="N",
        help="elastic floor for the shard count (default 1)",
    )
    run_parser.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="elastic cap for the shard count (default: uncapped)",
    )
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--network-nodes", type=int, default=10, help="grid nodes per axis")
    run_parser.add_argument("--area", type=float, default=4000.0, help="area side length in metres")

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the coordinator over TCP, or run a load/chaos scenario against it",
        description=(
            "Start the asyncio ingestion front end: a TCP server speaking the "
            "newline-delimited JSON protocol of repro.serving.protocol, batching "
            "location updates from concurrent clients into coordinator epochs with "
            "bounded-queue backpressure. With --scenario the server is instead "
            "booted on an ephemeral port and driven by the named load scenario "
            "(optionally with seed-deterministic fault injection via --chaos); the "
            "exit status reports the scenario's latency/throughput validation gate "
            "and the bit-for-bit equivalence check against a seed-coordinator "
            "replay of the accepted updates."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro serve --port 7711 --shards 4 --backend processes\n"
            "  python -m repro serve --epoch-seconds 0.5   # wall-clock epochs\n"
            "  python -m repro serve --list-scenarios\n"
            "  python -m repro serve --scenario uniform_trickle --shards 4\n"
            "  python -m repro serve --scenario bursty_downtown --partition kd \\\n"
            "      --chaos kill_worker --backend processes --chaos-seed 7"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=7711,
        help="TCP port (0 = ephemeral; scenario runs always use an ephemeral port)",
    )
    serve_parser.add_argument("--window", type=int, default=100, help="sliding window W in timestamps")
    serve_parser.add_argument("--cells", type=int, default=64, help="grid cells per axis")
    serve_parser.add_argument("--area", type=float, default=1000.0, help="monitored area side length")
    serve_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard fleet size behind the front door (1 = the paper's central coordinator)",
    )
    serve_parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="serial",
        help="epoch execution backend of the served fleet (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--partition", choices=PARTITION_KINDS, default="uniform",
        help="spatial partition of the served fleet (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--rebalance-threshold", type=float, default=2.0, metavar="R",
        help="kd rebalance trigger: max/mean shard-load ratio (must exceed 1.0)",
    )
    serve_parser.add_argument(
        "--epoch-mode", choices=EPOCH_MODES, default="delta",
        help="epoch pipeline of the served coordinator (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--kernel", choices=KERNELS, default="columnar",
        help="geometry kernels of the served coordinator (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--elastic", choices=ELASTIC_MODES, default="off",
        help="elastic shard fleet of the served coordinator (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--migration-budget", type=int, default=0, metavar="N",
        help="per-boundary record cap for rebalance migrations (see 'repro run --help')",
    )
    serve_parser.add_argument(
        "--min-shards", type=int, default=None, metavar="N",
        help="elastic floor for the shard count (default 1)",
    )
    serve_parser.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="elastic cap for the shard count (default: uncapped)",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=100_000, metavar="N",
        help="bounded batcher queue: updates admitted before backpressure rejects batches",
    )
    serve_parser.add_argument(
        "--epoch-seconds", type=float, default=None, metavar="S",
        help=(
            "enable the wall-clock epoch ticker: commit an epoch every S seconds, "
            "advancing the coordinator clock by --epoch timestamps. Omit to drive "
            "epochs with explicit 'tick' requests (deterministic mode)."
        ),
    )
    serve_parser.add_argument(
        "--epoch", type=int, default=10, metavar="T",
        help="timestamps per epoch boundary (tick spacing of scenario runs and the auto ticker)",
    )
    serve_parser.add_argument(
        "--list-scenarios", action="store_true",
        help="print the registered load scenarios and exit",
    )
    serve_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run this registered scenario against an in-process server and exit",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=42, help="scenario traffic seed",
    )
    serve_parser.add_argument(
        "--load-factor", type=float, default=1.0, metavar="F",
        help="scale every scenario batch size by F (load knob for measurement runs)",
    )
    serve_parser.add_argument(
        "--concurrent", action="store_true",
        help="race client sends within each epoch instead of the deterministic serialized order",
    )
    serve_parser.add_argument(
        "--chaos", choices=FAULT_TYPES, default=None, metavar="FAULT",
        help=(
            "inject this fault class during the scenario (drop_batch, duplicate_batch, "
            "reorder_batch, kill_worker, force_rebalance, stall_epoch), scheduled "
            "deterministically from --chaos-seed"
        ),
    )
    serve_parser.add_argument(
        "--chaos-rate", type=float, default=0.25, help="fault injection probability",
    )
    serve_parser.add_argument(
        "--chaos-seed", type=int, default=0, help="fault schedule seed",
    )

    for name, description in (
        ("figure7", "regenerate the Figure 7 sweep (vary the number of objects)"),
        ("figure8", "regenerate the Figure 8 sweep (vary the tolerance)"),
        ("ablations", "run the communication/uncertainty/grid ablations"),
    ):
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument("--scale", type=float, default=0.02, help="population scale factor (1.0 = paper)")
        sub.add_argument("--seed", type=int, default=42)
        sub.add_argument("--csv", type=Path, default=None, help="directory for CSV output")

    for name, description in (
        ("figure9", "render the discovered network (Figure 9)"),
        ("figure10", "render the top-20 hottest central paths (Figure 10)"),
    ):
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument("--scale", type=float, default=0.02)
        sub.add_argument("--seed", type=int, default=42)
        sub.add_argument("--width", type=int, default=72)
        sub.add_argument("--height", type=int, default=30)

    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        num_objects=args.objects,
        tolerance=args.tolerance,
        delta=args.delta,
        window=args.window,
        epoch_length=args.epoch,
        duration=args.duration,
        top_k=args.top_k,
        num_shards=args.shards,
        backend=args.backend,
        overlap_halo=args.overlap_halo,
        stitching=args.stitching,
        partition=args.partition,
        rebalance_threshold=args.rebalance_threshold,
        epoch_mode=args.epoch_mode,
        kernel=args.kernel,
        elastic=args.elastic,
        migration_budget=args.migration_budget,
        min_shards=args.min_shards,
        max_shards=args.max_shards,
        seed=args.seed,
        network_config=NetworkConfig(area_size=args.area, grid_nodes_per_axis=args.network_nodes),
    )
    result = HotPathSimulation(config).run()
    summary = result.summary()
    print(f"objects={config.num_objects} tolerance={config.tolerance} duration={config.duration}")
    if config.num_shards > 1:
        shards = result.coordinator.shard_statistics()
        halo = "adaptive" if config.overlap_halo is None else f"{config.overlap_halo} rings"
        print(
            f"coordinator backend: {config.backend} (partition: {config.partition}, "
            f"overlap halo: {halo}, stitching: {config.stitching})"
        )
        print(
            f"coordinator shards: {shards['num_shards']:.0f} "
            f"(records per shard min/mean/max: {shards['min_shard_records']:.0f}"
            f"/{shards['mean_shard_records']:.1f}/{shards['max_shard_records']:.0f}, "
            f"imbalance: {shards['imbalance']:.2f}, "
            f"rebalances: {shards['rebalances']:.0f}, "
            f"boundary-straddling paths: {shards['straddling_paths']:.0f})"
        )
        if config.elastic != "off":
            print(
                f"elastic fleet: {config.elastic} "
                f"(migration budget: {config.migration_budget or 'stop-the-world'}, "
                f"migrations: {shards['elastic_migrations']:.0f}, "
                f"records migrated: {shards['records_migrated']:.0f}"
                + (", migration in flight" if shards["migration_active"] else "")
                + ")"
            )
    print(f"index size (final / mean per epoch): {summary['final_index_size']:.0f} / {summary['mean_index_size']:.1f}")
    print(f"top-{config.top_k} score (mean per epoch):  {summary['mean_top_k_score']:.1f}")
    print(f"coordinator time per epoch:          {summary['mean_processing_seconds'] * 1000:.2f} ms")
    print(f"uplink messages (RayTrace / naive):  {summary['uplink_messages']:.0f} / {summary['naive_uplink_messages']:.0f}")
    print(f"message reduction vs naive:          {summary['message_reduction_versus_naive'] * 100:.1f}%")
    statistics = hot_path_statistics(result.hot_paths())
    print(f"hotness distribution: max={statistics.hotness.maximum:.0f} mean={statistics.hotness.mean:.2f}")
    print(f"top-decile heat share: {statistics.top_decile_heat_share * 100:.1f}%")
    print(f"\ntop-{config.top_k} hottest motion paths:")
    for rank, scored in enumerate(result.top_k_paths(), start=1):
        print(
            f"  {rank:2d}. hotness={scored.hotness:<3d} length={scored.path.length:8.1f} "
            f"({scored.path.start.x:.1f}, {scored.path.start.y:.1f}) -> "
            f"({scored.path.end.x:.1f}, {scored.path.end.y:.1f})"
        )
    corridors = result.hot_corridors()
    stitched = sum(1 for corridor in corridors if corridor.num_segments > 1)
    print(
        f"\ntop-{config.top_k} composite corridors "
        f"({len(corridors)} total, {stitched} stitched from multiple paths"
        + (
            ", cross-shard merge off"
            if config.stitching == "off" and config.num_shards > 1
            else ""
        )
        + "):"
    )
    for rank, corridor in enumerate(select_top_k_corridors(corridors, config.top_k), start=1):
        print(
            f"  {rank:2d}. segments={corridor.num_segments:<2d} hotness={corridor.hotness:<3d} "
            f"length={corridor.length:8.1f} score={corridor.score:10.1f} "
            f"({corridor.start.x:.1f}, {corridor.start.y:.1f}) -> "
            f"({corridor.end.x:.1f}, {corridor.end.y:.1f})"
        )
    return 0


def _command_figure7(args: argparse.Namespace) -> int:
    report = run_figure7(scale=_scale_from_args(args), seed=args.seed)
    print(report.format_table())
    if args.csv is not None:
        path = write_sweep_csv(report.rows, Path(args.csv) / "figure7.csv")
        print(f"csv written to {path}")
    return 0


def _command_figure8(args: argparse.Namespace) -> int:
    report = run_figure8(scale=_scale_from_args(args), seed=args.seed)
    print(report.format_table())
    if args.csv is not None:
        path = write_sweep_csv(report.rows, Path(args.csv) / "figure8.csv")
        print(f"csv written to {path}")
    return 0


def _command_figure9(args: argparse.Namespace) -> int:
    report = run_figure9(
        scale=_scale_from_args(args), seed=args.seed, map_width=args.width, map_height=args.height
    )
    print("Ground-truth network:")
    print(report.network_map)
    print("\nDiscovered motion paths:")
    print(report.discovered_map)
    print(f"\nhot paths: {len(report.hot_paths)}  coverage: {report.coverage_fraction() * 100:.1f}%")
    return 0


def _command_figure10(args: argparse.Namespace) -> int:
    report = run_figure10(
        scale=_scale_from_args(args), seed=args.seed, map_width=args.width, map_height=args.height
    )
    print(report.discovered_map)
    print(f"\ntop paths rendered: {len(report.hot_paths)}")
    return 0


def _command_ablations(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    communication = run_communication_ablation(scale=scale, seed=args.seed)
    uncertainty = run_uncertainty_ablation(scale=scale, seed=args.seed)
    grid = run_grid_resolution_ablation(scale=scale, seed=args.seed)

    print("communication (RayTrace vs naive):")
    for row in communication:
        print(f"  eps={row.tolerance:<5.1f} raytrace={row.raytrace_messages:<7d} naive={row.naive_messages:<7d} "
              f"reduction={row.reduction * 100:.1f}%")
    print("uncertainty (delta sweep):")
    for row in uncertainty:
        print(f"  delta={row.delta:<5.2f} messages={row.uplink_messages:<7d} index={row.mean_index_size:.1f}")
    print("grid resolution:")
    for row in grid:
        print(f"  cells={row.cells_per_axis:<4d} time/epoch={row.mean_processing_seconds * 1000:.2f} ms "
              f"index={row.mean_index_size:.1f}")

    if args.csv is not None:
        written = write_experiment_bundle(
            args.csv,
            ablations={
                "communication": communication,
                "uncertainty": uncertainty,
                "grid_resolution": grid,
            },
        )
        for path in written:
            print(f"csv written to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        print("registered load scenarios:")
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]()
            print(f"  {name:<18s} clients={scenario.num_clients:<3d} epochs={scenario.epochs:<3d} {scenario.description}")
        return 0

    if args.scenario is not None:
        scenario = get_scenario(args.scenario, load_factor=args.load_factor)
        injection = InjectionConfig(
            enabled=args.chaos is not None,
            fault=args.chaos,
            rate=args.chaos_rate,
            seed=args.chaos_seed,
        )
        runner = ScenarioRunner(
            num_shards=args.shards,
            backend=args.backend,
            partition=args.partition,
            window=args.window,
            cells_per_axis=args.cells,
            epoch_length=args.epoch,
            rebalance_threshold=args.rebalance_threshold,
            epoch_mode=args.epoch_mode,
            kernel=args.kernel,
            elastic=args.elastic,
            migration_budget=args.migration_budget,
            min_shards=args.min_shards,
            max_shards=args.max_shards,
            max_pending_updates=args.max_pending,
            bounds=Rectangle(Point(0.0, 0.0), Point(args.area, args.area)),
        )
        result = runner.run(
            scenario, seed=args.seed, injection=injection, concurrent=args.concurrent
        )
        seed_snapshot = replay_accepted_log(
            result.accepted_log,
            bounds=runner.bounds,
            window=runner.window,
            cells_per_axis=runner.cells_per_axis,
            kernel=args.kernel,
        )
        equal = result.report == seed_snapshot
        print(
            f"scenario {scenario.scenario_id}: shards={args.shards} backend={args.backend} "
            f"partition={args.partition}"
            + (f" chaos={args.chaos} rate={args.chaos_rate} seed={args.chaos_seed}" if args.chaos else "")
        )
        print(
            f"  traffic: {result.submitted_updates} submitted, {result.accepted_updates} accepted, "
            f"{result.dropped_updates} dropped, {result.epochs_run} epochs"
        )
        print(
            f"  faults: drops={result.dropped_batches} dups={result.duplicated_batches} "
            f"reorders={result.reordered_swaps} kills={result.worker_kills} "
            f"rebalances={result.forced_rebalances} stalls={result.stalled_epochs} "
            f"backpressure={result.backpressure_rejections} retried={result.retried_batches}"
        )
        print(
            f"  latency: ack p50={result.ack_latency_p50_ms:.2f} ms p99={result.ack_latency_p99_ms:.2f} ms; "
            f"ingest p50={result.server_stats.get('p50_ms', 0.0):.2f} ms "
            f"p99={result.server_stats.get('p99_ms', 0.0):.2f} ms; "
            f"throughput={result.updates_per_sec:.0f} updates/s"
        )
        print(f"  seed-replay equivalence: {'bit-for-bit EQUAL' if equal else 'DIVERGED'}")
        if result.validation_errors:
            for error in result.validation_errors:
                print(f"  validation FAILED: {error}")
        else:
            print("  validation passed")
        return 0 if (equal and result.passed) else 1

    coordinator = Coordinator(
        CoordinatorConfig(
            bounds=Rectangle(Point(0.0, 0.0), Point(args.area, args.area)),
            window=args.window,
            cells_per_axis=args.cells,
            num_shards=args.shards,
            backend=args.backend,
            partition=args.partition,
            rebalance_threshold=args.rebalance_threshold,
            epoch_mode=args.epoch_mode,
            kernel=args.kernel,
            elastic=args.elastic,
            migration_budget=args.migration_budget,
            min_shards=args.min_shards,
            max_shards=args.max_shards,
        )
    )
    server = IngestionServer(
        coordinator,
        ServingConfig(
            host=args.host,
            port=args.port,
            max_pending_updates=args.max_pending,
            auto_epoch_seconds=args.epoch_seconds,
            auto_epoch_timestamps=args.epoch,
        ),
    )

    async def _serve() -> None:
        await server.start()
        ticking = (
            f"auto epochs every {args.epoch_seconds}s"
            if args.epoch_seconds is not None
            else "explicit 'tick' epochs"
        )
        print(
            f"serving on {args.host}:{server.port} "
            f"(shards={args.shards}, backend={args.backend}, partition={args.partition}, {ticking})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        coordinator.close()
    return 0


_COMMANDS = {
    "run": _command_run,
    "serve": _command_serve,
    "figure7": _command_figure7,
    "figure8": _command_figure8,
    "figure9": _command_figure9,
    "figure10": _command_figure10,
    "ablations": _command_ablations,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
