"""Serving benchmark — ingest latency and sustained throughput per backend.

Drives the ``ramp`` scenario (the load-probing shape) through the real TCP
front door once per backend and records the serving table: p50/p99 ingest
latency (batch arrival to epoch commit, the batcher's own samples), p50/p99
batch-ack latency, and sustained accepted updates/second.  Every run is also
held to the serving equivalence contract — the numbers are only worth
recording for a front door that still answers exactly like the seed
coordinator replaying the same accepted log.
"""

from __future__ import annotations

import pytest

from repro.serving.scenarios import ScenarioRunner, get_scenario, replay_accepted_log

BACKENDS = ("serial", "threads", "processes")


def run_backend(backend: str):
    scenario = get_scenario("ramp", load_factor=2.0)
    runner = ScenarioRunner(num_shards=4, backend=backend, partition="kd")
    result = runner.run(scenario, seed=42, concurrent=True)
    assert result.report == replay_accepted_log(result.accepted_log), backend
    assert result.passed, (backend, result.validation_errors)
    return result


@pytest.mark.benchmark(group="serving")
def test_serving_ingest_latency(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: [run_backend(backend) for backend in BACKENDS], rounds=1, iterations=1
    )

    header = (
        f"{'backend':>10} {'updates':>8} {'epochs':>7} "
        f"{'ingest p50':>11} {'ingest p99':>11} {'ack p50':>9} {'ack p99':>9} "
        f"{'updates/s':>10}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        stats = result.server_stats
        lines.append(
            f"{result.backend:>10} {result.accepted_updates:>8d} {result.epochs_run:>7d} "
            f"{stats['p50_ms']:>9.2f}ms {stats['p99_ms']:>9.2f}ms "
            f"{result.ack_latency_p50_ms:>7.2f}ms {result.ack_latency_p99_ms:>7.2f}ms "
            f"{result.updates_per_sec:>10.0f}"
        )
    record_result("serving_ingest", "\n".join(lines))

    for result in results:
        assert result.accepted_updates == result.submitted_updates
        assert 0.0 < result.server_stats["p50_ms"] <= result.server_stats["p99_ms"]
        assert result.updates_per_sec > 0
