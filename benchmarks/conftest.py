"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale (see ``repro.experiments.config.ExperimentScale``); set the
``REPRO_SCALE`` environment variable to ``1.0`` to run the paper-size
experiments instead.  Each benchmark writes the series it produced to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture and can be compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_scale() -> ExperimentScale:
    """The scale shared by every benchmark (controlled by REPRO_SCALE)."""
    return ExperimentScale.from_environment()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write a benchmark's human-readable result table to the results directory."""

    def _record(name: str, content: str) -> Path:
        destination = results_dir / f"{name}.txt"
        destination.write_text(content + "\n")
        print(f"\n[{name}]\n{content}")
        return destination

    return _record
