"""Table 2 — experimental parameters and the default-configuration run.

The paper's Table 2 lists the workload parameters and their default values.
This benchmark materialises the default configuration (scaled for Python),
runs it once end to end and records both the parameter table and the headline
metrics of the default run, which every other experiment varies around.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PAPER_DEFAULTS, scaled_simulation_config
from repro.simulation.engine import HotPathSimulation


def _run_default(scale):
    config = scaled_simulation_config(scale=scale)
    return config, HotPathSimulation(config).run()


@pytest.mark.benchmark(group="table2")
def test_table2_default_configuration(benchmark, experiment_scale, record_result):
    config, result = benchmark.pedantic(
        lambda: _run_default(experiment_scale), rounds=1, iterations=1
    )
    summary = result.summary()
    lines = ["Table 2 — parameters (paper value -> this run)"]
    lines.append(f"  N objects:          {int(PAPER_DEFAULTS['num_objects'])} -> {config.num_objects}")
    lines.append(f"  tolerance epsilon:  {PAPER_DEFAULTS['tolerance']} m")
    lines.append(f"  positional error:   {PAPER_DEFAULTS['positional_error']} m")
    lines.append(f"  agility alpha:      {PAPER_DEFAULTS['agility']}")
    lines.append(f"  displacement s:     {PAPER_DEFAULTS['displacement']} m")
    lines.append(f"  window W:           {int(PAPER_DEFAULTS['window'])} timestamps")
    lines.append(f"  top-k:              {int(PAPER_DEFAULTS['top_k'])}")
    lines.append(f"  duration:           {int(PAPER_DEFAULTS['duration'])} -> {config.duration} timestamps")
    lines.append(f"  epoch length:       {config.epoch_length} timestamps")
    lines.append("Default-run metrics (averages per epoch)")
    lines.append(f"  index size:         {summary['mean_index_size']:.1f}")
    lines.append(f"  top-k score:        {summary['mean_top_k_score']:.1f}")
    lines.append(f"  coordinator time:   {summary['mean_processing_seconds'] * 1000:.2f} ms")
    lines.append(f"  uplink messages:    {summary['uplink_messages']:.0f}")
    lines.append(f"  naive messages:     {summary['naive_uplink_messages']:.0f}")
    record_result("table2_parameters", "\n".join(lines))

    assert result.coordinator.index_size() > 0
    assert summary["mean_top_k_score"] > 0.0
