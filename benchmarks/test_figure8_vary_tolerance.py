"""Figure 8 — varying the tolerance parameter (panels a, b, c).

Expected shape from the paper: as epsilon grows, SinglePath stores fewer paths
(8a), those paths are hotter and longer so its score improves relative to DP
(8b), and coordinator processing time drops substantially — the paper reports
more than a 3x reduction between epsilon = 2 and epsilon = 20 (8c).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PAPER_TOLERANCES
from repro.experiments.figure8 import run_figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8_vary_tolerance(benchmark, experiment_scale, record_result):
    report = benchmark.pedantic(
        lambda: run_figure8(PAPER_TOLERANCES, scale=experiment_scale),
        rounds=1,
        iterations=1,
    )
    record_result("figure8_vary_tolerance", report.format_table())

    sizes = report.panel_a()["single_path_index_size"]
    scores = report.panel_b()["single_path_score"]

    # Panel (a): a larger tolerance yields a more compact index (compare extremes).
    assert sizes[-1] < sizes[0]
    # Panel (b): scores are positive and the loosest tolerance beats the tightest
    # (longer paths dominate the score metric).
    assert all(score > 0.0 for score in scores)
    assert scores[-1] > scores[0]
