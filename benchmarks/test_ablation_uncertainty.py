"""Ablation A2 — effect of the (epsilon, delta) uncertainty model.

Positive delta shrinks the per-measurement tolerance squares (Section 4.1), so
the filter reports more often and the discovered paths change.  Expected
shape: uplink message volume is non-decreasing in delta while the index size
stays in the same ballpark.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_uncertainty_ablation


@pytest.mark.benchmark(group="ablation")
def test_ablation_uncertainty_model(benchmark, experiment_scale, record_result):
    rows = benchmark.pedantic(
        lambda: run_uncertainty_ablation(deltas=(0.0, 0.05, 0.2), scale=experiment_scale),
        rounds=1,
        iterations=1,
    )
    header = f"{'delta':>8} {'uplink msgs':>12} {'index size':>12} {'top-k score':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.delta:>8.2f} {row.uplink_messages:>12d} {row.mean_index_size:>12.1f} "
            f"{row.mean_top_k_score:>12.1f}"
        )
    record_result("ablation_uncertainty", "\n".join(lines))

    assert rows[0].delta == 0.0
    # Tighter probabilistic guarantees can only increase reporting.
    assert rows[-1].uplink_messages >= rows[0].uplink_messages
    assert all(row.mean_index_size > 0 for row in rows)
