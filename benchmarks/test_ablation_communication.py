"""Ablation A1 — communication overhead: RayTrace filtering versus naive reporting.

The paper motivates the two-tier design by the infeasibility of relaying every
location update to the coordinator (Sections 1 and 3.2) but does not plot the
saving; this ablation quantifies it across tolerance values.  Expected shape:
the reduction grows with epsilon, and even the tightest tolerance suppresses
the large majority of updates.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_communication_ablation


@pytest.mark.benchmark(group="ablation")
def test_ablation_communication_overhead(benchmark, experiment_scale, record_result):
    rows = benchmark.pedantic(
        lambda: run_communication_ablation(tolerances=(2.0, 10.0, 20.0), scale=experiment_scale),
        rounds=1,
        iterations=1,
    )
    header = f"{'epsilon':>8} {'RayTrace msgs':>14} {'naive msgs':>12} {'reduction':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.tolerance:>8.1f} {row.raytrace_messages:>14d} {row.naive_messages:>12d} "
            f"{row.reduction * 100:>9.1f}%"
        )
    record_result("ablation_communication", "\n".join(lines))

    for row in rows:
        assert row.raytrace_messages < row.naive_messages
        assert row.reduction > 0.25
    # At the default tolerance and above, the filter suppresses the large
    # majority of updates, and looser tolerance suppresses at least as many
    # messages as the tightest one.
    assert rows[1].reduction > 0.5
    assert rows[-1].raytrace_messages <= rows[0].raytrace_messages
