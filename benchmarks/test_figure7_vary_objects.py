"""Figure 7 — varying the number of objects (panels a, b, c).

The sweep runs the full framework (SinglePath plus the DP baseline on the same
measurement stream) for the paper's object counts, scaled down by
``REPRO_SCALE``.  Expected shape from the paper:

* 7(a): both methods' index sizes grow with N; DP stores somewhat fewer
  segments than SinglePath (it is not constrained to valid motion paths);
* 7(b): DP's top-k score is generally at least as high as SinglePath's, with
  SinglePath competitive (and occasionally better, as at N = 20,000);
* 7(c): coordinator processing time grows steeply with N.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PAPER_OBJECT_COUNTS
from repro.experiments.figure7 import run_figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7_vary_number_of_objects(benchmark, experiment_scale, record_result):
    report = benchmark.pedantic(
        lambda: run_figure7(PAPER_OBJECT_COUNTS, scale=experiment_scale),
        rounds=1,
        iterations=1,
    )
    record_result("figure7_vary_objects", report.format_table())

    sizes = report.panel_a()["single_path_index_size"]
    times = report.panel_c()["processing_seconds"]
    scores = report.panel_b()["single_path_score"]

    # Panel (a): the index grows monotonically with the population.
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    # Panel (b): scores are positive everywhere.
    assert all(score > 0.0 for score in scores)
    # Panel (c): more objects cost more coordinator time (compare the extremes,
    # allowing noise in the intermediate points).
    assert times[-1] > times[0]
