"""Ablation A3 — sensitivity to the grid-index resolution.

Section 5.1 leaves the number of grid cells as a free parameter.  This
ablation sweeps the resolution and records coordinator processing time, index
size and top-k score; the discovered paths themselves should be essentially
unaffected (the grid only accelerates range queries), which is what the
assertions check.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_grid_resolution_ablation


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid_resolution(benchmark, experiment_scale, record_result):
    rows = benchmark.pedantic(
        lambda: run_grid_resolution_ablation(cell_counts=(16, 64, 128), scale=experiment_scale),
        rounds=1,
        iterations=1,
    )
    header = f"{'cells/axis':>10} {'time/epoch s':>14} {'index size':>12} {'top-k score':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.cells_per_axis:>10d} {row.mean_processing_seconds:>14.4f} "
            f"{row.mean_index_size:>12.1f} {row.mean_top_k_score:>12.1f}"
        )
    record_result("ablation_grid_resolution", "\n".join(lines))

    sizes = [row.mean_index_size for row in rows]
    scores = [row.mean_top_k_score for row in rows]
    # The grid resolution is a performance knob: results stay (nearly) identical.
    assert max(sizes) - min(sizes) <= 0.05 * max(sizes) + 1.0
    assert max(scores) - min(scores) <= 0.10 * max(scores) + 1.0
