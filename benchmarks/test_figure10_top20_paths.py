"""Figure 10 — the top-20 hottest motion paths in the centre of the area.

The paper zooms into the centre of Athens and draws only the 20 hottest paths
stored in the index.  The benchmark reproduces the zoomed selection and
records the rendered map plus the ranked list of paths.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure9 import run_figure10


@pytest.mark.benchmark(group="figure10")
def test_figure10_top20_hottest_paths(benchmark, experiment_scale, record_result):
    report = benchmark.pedantic(
        lambda: run_figure10(scale=experiment_scale, k=20, map_width=60, map_height=24),
        rounds=1,
        iterations=1,
    )
    ranked_lines = []
    for rank, (record, hotness) in enumerate(report.hot_paths, start=1):
        ranked_lines.append(
            f"  {rank:2d}. hotness={hotness:<3d} length={record.path.length:8.1f} "
            f"({record.path.start.x:8.1f}, {record.path.start.y:8.1f}) -> "
            f"({record.path.end.x:8.1f}, {record.path.end.y:8.1f})"
        )
    content = (
        "Top-20 hottest motion paths in the centre of the monitored area:\n"
        + "\n".join(ranked_lines)
        + "\n\nRendered map (brightness = hotness):\n"
        + report.discovered_map
    )
    record_result("figure10_top20_paths", content)

    assert 0 < len(report.hot_paths) <= 20
    hotness_values = [hotness for _, hotness in report.hot_paths]
    assert hotness_values == sorted(hotness_values, reverse=True)
