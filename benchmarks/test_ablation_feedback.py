"""Ablation A4 — coordinator-to-client feedback (the paper's future-work sketch).

Section 7 of the paper suggests that feeding information about nearby hot
motion paths back to the clients could improve RayTrace's splitting decisions.
This ablation replays the same corridor workload through the base protocol and
through the feedback extension (hot-vertex hints + FSA snapping) and compares
index size, hottest-path hotness and message volume.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rectangle
from repro.client.raytrace import RayTraceConfig
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.extensions.feedback import FeedbackCoordinator
from repro.simulation.replay import TrajectoryReplayDriver
from repro.workload.scenarios import waypoint_corridor_trajectories

BOUNDS = Rectangle(Point(-2000.0, -2000.0), Point(4000.0, 4000.0))
CORRIDOR = [
    Point(0.0, 0.0),
    Point(900.0, 0.0),
    Point(900.0, 700.0),
    Point(1800.0, 700.0),
    Point(1800.0, 1500.0),
]


def _run(use_feedback: bool):
    trajectories = waypoint_corridor_trajectories(
        CORRIDOR, num_objects=20, duration=120, lateral_spread=3.0, start_stagger=4, seed=5
    )
    coordinator_config = CoordinatorConfig(bounds=BOUNDS, window=2000, cells_per_axis=48)
    coordinator = (
        # The hint radius must reach the next corridor corner (the legs are
        # 700-900 m long) for the hints to be useful to a client that reports
        # again only at that corner.
        FeedbackCoordinator(coordinator_config, hint_radius=1200.0)
        if use_feedback
        else Coordinator(coordinator_config)
    )
    driver = TrajectoryReplayDriver(
        coordinator, RayTraceConfig(15.0), epoch_length=10, use_feedback=use_feedback
    )
    stats = driver.replay(trajectories)
    return coordinator, stats


@pytest.mark.benchmark(group="ablation")
def test_ablation_feedback_extension(benchmark, record_result):
    (base, base_stats), (feedback, feedback_stats) = benchmark.pedantic(
        lambda: (_run(False), _run(True)), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':>10} {'index size':>12} {'max hotness':>12} {'uplink msgs':>12} {'downlink bytes':>15} {'snaps':>6}",
        "-" * 72,
        f"{'base':>10} {base.index_size():>12d} {base.top_k(1)[0].hotness:>12d} "
        f"{base_stats.uplink.messages:>12d} {base_stats.downlink.bytes:>15d} {'-':>6}",
        f"{'feedback':>10} {feedback.index_size():>12d} {feedback.top_k(1)[0].hotness:>12d} "
        f"{feedback_stats.uplink.messages:>12d} {feedback_stats.downlink.bytes:>15d} "
        f"{feedback_stats.snapped_reports:>6d}",
    ]
    record_result("ablation_feedback", "\n".join(lines))

    # Feedback must keep the protocol functional, concentrate (not fragment)
    # the index, and pay for it only with a larger downlink.
    assert feedback.top_k(1)[0].hotness >= 1
    assert feedback.index_size() <= base.index_size() * 1.25 + 5
    assert feedback_stats.downlink.bytes >= base_stats.downlink.bytes
