"""Figure 9 — the road network as discovered by SinglePath.

The paper's Figure 9 plots every motion path with non-zero hotness inside the
sliding window; the picture closely resembles the underlying Athens network
even though the algorithms never see it.  The benchmark renders both maps as
ASCII density grids, records them side by side and checks a quantitative proxy
for the resemblance (coverage of the network's raster cells by discovered
paths).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure9 import run_figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9_discovered_network(benchmark, experiment_scale, record_result):
    report = benchmark.pedantic(
        lambda: run_figure9(scale=experiment_scale, map_width=72, map_height=30),
        rounds=1,
        iterations=1,
    )
    coverage = report.coverage_fraction()
    content = (
        "Ground-truth network (hidden from the algorithms):\n"
        f"{report.network_map}\n\n"
        "Motion paths discovered by SinglePath (brightness = hotness):\n"
        f"{report.discovered_map}\n\n"
        f"Hot paths: {len(report.hot_paths)}   coverage of network raster: {coverage * 100:.1f}%"
    )
    record_result("figure9_network_discovery", content)

    assert len(report.hot_paths) > 0
    # The discovered picture must overlap a meaningful share of the network.
    assert coverage > 0.25
