"""Sharding benchmark — coordinator scale-out across shard counts and backends.

Runs the same scaled workload against a single-shard coordinator, against 2x2
and 4x4 shard fleets, and against the fleet on every execution backend
(``serial``, ``threads``, ``processes``).  Sharding and the backends are
behaviour-identical by construction (see ``tests/test_sharding_equivalence.py``),
so the benchmark asserts the discovered top-k is bit-for-bit equal across every
combination and records the per-epoch coordinator time, the fleet's load
balance and the per-backend speedup over the serial pipeline.

Interpreting the backend table: candidate passes fan out per shard and
decisions commit per conflict group, so available parallelism is bounded by
the group structure of each epoch and the machine's cores (the table records
both).  On standard CPython the GIL caps the ``threads`` backend at serial
throughput regardless of cores — it is measured as the coordination-overhead
baseline and for free-threaded builds; ``processes`` is the backend that can
win on multi-core hardware, and on a single-core container both show their
overhead rather than a speedup.

The stitching table isolates the corridor-stitching merge pass: the
``global`` row stitches one flat hot-path list (the seed coordinator's
long-path report, ``stitch_paths``), and the ``shard-merge`` rows run
``ShardRouter.stitch_epoch`` — per-shard weld passes on each execution
backend plus the cross-boundary merge — over the identical hot set, so the
delta is the cost of distributing the stitch.  Every row must produce the
identical corridors (the stitching exactness contract).

The epoch-mode table measures the incremental epoch pipeline
(``--epoch-mode delta``): the same stream driven in ``full`` and ``delta``
mode at 10% and 90% report turnover, with the cross-epoch reuse counters
(halo pools reused vs rebuilt, corridor chains reused vs re-welded) that
account for the savings.  Both modes must produce bit-for-bit identical
traces, and delta must beat full by at least 2x on the low-churn workload —
the delta pipeline's claim, asserted where it is measured.

The overlap-build table isolates the epoch's FSA overlap-structure stage:
the ``global`` row is the single inline ``R_all`` build that used to be the
pipeline's one remaining global phase, and the ``shard-local`` rows run the
stage-2 worker pass (halo pools, deduped and shared-prefix-built) on every
backend.  Shard-local work is larger in aggregate — halo pools overlap, so
regions near boundaries are derived in several shards — which is the price
of removing the serialization point; the win is that the per-shard builds
parallelise with the candidate passes on multi-core machines.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.overlaps import (
    DerivedRegionCache,
    FsaOverlapStructure,
    build_structures,
)
from repro.coordinator.sharding import ShardRouter, plan_shard_overlaps
from repro.coordinator.stitching import stitch_paths
from repro.experiments.config import scaled_simulation_config
from repro.simulation.engine import HotPathSimulation

SHARD_COUNTS = (1, 4, 16)
BACKENDS = ("serial", "threads", "processes")
BACKEND_SHARD_COUNTS = (4, 16)

OVERLAP_BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def _run(num_shards, experiment_scale, backend="serial"):
    config = scaled_simulation_config(
        scale=experiment_scale,
        num_shards=num_shards,
        backend=backend,
        run_dp_baseline=False,
        run_naive_baseline=False,
    )
    return HotPathSimulation(config).run()


def _overlap_epoch(num_states: int = 240, seed: int = 7):
    """One epoch's worth of overlap-heavy states spread over a 4x4 fleet."""
    rng = random.Random(seed)
    states = []
    for _ in range(num_states):
        start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        centre = Point(start.x + rng.uniform(-150.0, 150.0), start.y + rng.uniform(-150.0, 150.0))
        fsa = Rectangle.from_center(centre, rng.uniform(5.0, 80.0))
        states.append(ObjectState(rng.randrange(num_states), start, 0, fsa.low, fsa.high, 10))
    return states


def _overlap_build_rows(repeats: int = 5):
    """Time the epoch overlap-structure build: global vs shard-local per backend.

    The global row is the pre-PR-3 serialization point (one structure from
    every FSA, built inline); the shard-local rows run the stage-2 worker
    pass of each execution backend over the overlap plan's distinct halo
    pools (candidate buckets left empty to isolate the build).
    """
    states = _overlap_epoch()
    grid_router = ShardRouter(OVERLAP_BOUNDS, window=60, cells_per_axis=32, num_shards=16)
    buckets, fsas = {}, {}
    for position, state in enumerate(states):
        shard_id = grid_router.grid.shard_id_of(state.start)
        buckets.setdefault(shard_id, []).append((position, state))
        fsas[state.object_id] = state.fsa
    plan = plan_shard_overlaps(grid_router.grid, buckets, fsas)

    rows = []
    started = time.perf_counter()
    for _ in range(repeats):
        structure = FsaOverlapStructure.build(fsas)
    elapsed_ms = (time.perf_counter() - started) / repeats * 1000.0
    rows.append(("global", "serial", elapsed_ms, 1, len(structure)))

    # The cross-pool derived-region cache (PR 4, opt-in): halo pools overlap,
    # so boundary regions are derived once per pool; the cache shares them by
    # member set.  Both directions are measured — the sharing it finds *and*
    # what the sharing costs — which is why the epoch pipeline builds
    # cacheless by default (member-set hashing outweighs the saved
    # four-comparison intersections at epoch-sized pools).
    started = time.perf_counter()
    for _ in range(repeats):
        build_structures(plan.pools)
    uncached_ms = (time.perf_counter() - started) / repeats * 1000.0
    started = time.perf_counter()
    for _ in range(repeats):
        cache = DerivedRegionCache()
        build_structures(plan.pools, cache=cache)
    cached_ms = (time.perf_counter() - started) / repeats * 1000.0
    cache_note = (
        f"derived-region cache (opt-in) over {len(plan.pools)} halo pools: "
        f"{cache.hits} hits / {cache.misses} misses "
        f"({cache.hits / (cache.hits + cache.misses) * 100.0:.1f}% of derivations shared); "
        f"inline build {uncached_ms:.1f} ms cacheless vs {cached_ms:.1f} ms cached "
        "(the sharing is real, the hashing costs more — pipeline stays cacheless)"
        if cache.hits + cache.misses
        else "derived-region cache: no derivations"
    )

    for backend_name in BACKENDS:
        router = ShardRouter(
            OVERLAP_BOUNDS, window=60, cells_per_axis=32, num_shards=16, backend=backend_name
        )
        backend = router.pipeline.backend
        try:
            backend.map_candidate_buckets(router, {}, [], plan.pools)  # warm pools
            started = time.perf_counter()
            for _ in range(repeats):
                _, structures = backend.map_candidate_buckets(router, {}, [], plan.pools)
            elapsed_ms = (time.perf_counter() - started) / repeats * 1000.0
            regions = sum(len(built) for built in structures)
            rows.append(("shard-local", backend_name, elapsed_ms, len(plan.pools), regions))
        finally:
            router.pipeline.close()
    return rows, cache_note


def _chained_hot_router(backend: str = "serial") -> ShardRouter:
    """A 4x4 fleet whose hot set is ~600 chained fragments (random walks
    crossing shard borders), the workload of the stitching table."""
    router = ShardRouter(
        OVERLAP_BOUNDS, window=10**6, cells_per_axis=32, num_shards=16, backend=backend
    )
    rng = random.Random(11)
    timestamp = 0
    for _walk in range(80):
        point = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        for _step in range(8):
            target = Point(
                min(max(point.x + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
                min(max(point.y + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
            )
            if target == point:
                continue
            record = router.insert(MotionPath(point, target), created_at=timestamp)
            router.hotness.record_crossing(record.path_id, timestamp)
            point = target
        timestamp += 1
    return router


def _stitch_rows(repeats: int = 5):
    """Time the corridor-stitching merge: global reference vs per-backend
    ``stitch_epoch`` over the identical chained hot set (and assert every
    row produces the identical corridors)."""
    rows = []
    reference_router = _chained_hot_router()
    hot = [
        (reference_router.index.get(path_id), hotness)
        for path_id, hotness in sorted(reference_router.hotness.items())
    ]
    started = time.perf_counter()
    for _ in range(repeats):
        reference = stitch_paths(hot)
    elapsed_ms = (time.perf_counter() - started) / repeats * 1000.0
    reference_ids = [corridor.path_ids for corridor in reference]
    multi = sum(1 for corridor in reference if corridor.num_segments > 1)
    rows.append(("global", "serial", elapsed_ms, len(hot), len(reference), multi, 0))

    for backend_name in BACKENDS:
        router = _chained_hot_router(backend_name)
        try:
            router.stitch_epoch()  # warm the worker pools
            started = time.perf_counter()
            for _ in range(repeats):
                corridors = router.stitch_epoch()
            elapsed_ms = (time.perf_counter() - started) / repeats * 1000.0
            stats = router.stitch_stats
            assert [c.path_ids for c in corridors] == reference_ids
            rows.append(
                (
                    "shard-merge",
                    backend_name,
                    elapsed_ms,
                    stats["fragments"],
                    stats["corridors"],
                    stats["multi_segment_corridors"],
                    stats["boundary_welds"],
                )
            )
        finally:
            router.pipeline.close()
    return rows


def _skewed_downtown_stream(seed: int = 42, epochs: int = 10, per_epoch: int = 60):
    """A density-skewed epoch stream: ~80% of reports start in the downtown
    corner (the workload the load-adaptive kd partition exists for)."""
    rng = random.Random(seed)
    stream = []
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        states = []
        for _ in range(per_epoch):
            if rng.random() < 0.8:
                start = Point(rng.uniform(0.0, 250.0), rng.uniform(0.0, 250.0))
            else:
                start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            centre = Point(
                start.x + rng.uniform(-150.0, 150.0), start.y + rng.uniform(-150.0, 150.0)
            )
            fsa = Rectangle.from_center(centre, rng.uniform(5.0, 100.0))
            t_end = boundary - rng.randrange(10)
            states.append(
                ObjectState(
                    rng.randrange(per_epoch * 2), start, max(0, t_end - 5),
                    fsa.low, fsa.high, t_end,
                )
            )
        stream.append((boundary, states))
    return stream


def _rebalance_rows():
    """Shard-load imbalance on the skewed workload: uniform grid vs the
    load-adaptive kd partition (rebalancing enabled), identical answers.

    Rows report the final fleet statistics plus per-epoch coordinator time;
    the uniform row *is* the "before" of the rebalancing story — the fixed
    grid piles the downtown records onto a few shards — and the kd rows are
    the "after": the epoch-boundary rebalance protocol refits the splits to
    the endpoint density whenever max/mean load exceeds the threshold.
    """
    rows = []
    reference = None
    stream = _skewed_downtown_stream()
    for label, partition, threshold in (
        ("uniform", "uniform", 2.0),
        ("kd", "kd", 2.0),
        ("kd tight", "kd", 1.2),
    ):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=OVERLAP_BOUNDS,
                window=60,
                cells_per_axis=32,
                num_shards=16,
                partition=partition,
                rebalance_threshold=threshold,
            )
        )
        trace = []
        started = time.perf_counter()
        for boundary, states in stream:
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            trace.append((outcome.responses, outcome.paths_inserted, outcome.paths_expired))
        elapsed_ms = (time.perf_counter() - started) / len(trace) * 1000.0
        trace.append(sorted(coordinator.hotness.items()))
        if reference is None:
            reference = trace
        else:
            # The partition layer moves state, never answers.
            assert trace == reference, f"{label} diverged from the uniform fleet"
        stats = coordinator.shard_statistics()
        rows.append(
            (
                label,
                stats["imbalance"],
                stats["max_shard_records"],
                stats["mean_shard_records"],
                stats["rebalances"],
                elapsed_ms,
            )
        )
        coordinator.close()
    # The headline claim of the partition layer, asserted where it is measured.
    assert rows[1][1] < rows[0][1], "kd did not improve on uniform imbalance"
    return rows


MIGRATION_RECORDS = 1200  # fleet size when the grow migration is requested
MIGRATION_CHURN = 60  # records inserted per boundary while the migration runs
MIGRATION_BOUNDARIES = 12  # boundaries driven after the request, every row


def _migration_fleet(budget: int, seed: int = 13) -> ShardRouter:
    """A 2x2 elastic fleet holding the downtown-skewed migration workload."""
    router = ShardRouter(
        OVERLAP_BOUNDS,
        window=10**6,
        cells_per_axis=32,
        num_shards=4,
        elastic="auto",
        migration_budget=budget,
        min_shards=4,
        max_shards=5,
        rebalance_threshold=6.0,  # quiet: only the requested grow migrates
    )
    rng = random.Random(seed)
    for _ in range(MIGRATION_RECORDS):
        if rng.random() < 0.8:
            start = Point(rng.uniform(0.0, 250.0), rng.uniform(0.0, 250.0))
        else:
            start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        end = Point(
            min(max(start.x + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
            min(max(start.y + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
        )
        record = router.insert(MotionPath(start, end))
        router.hotness.record_crossing(record.path_id, 0)
    return router


def _migration_churn_batches():
    """The identical per-boundary insert churn every migration row replays."""
    rng = random.Random(29)
    batches = []
    for _ in range(MIGRATION_BOUNDARIES):
        batch = []
        for _ in range(MIGRATION_CHURN):
            start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            end = Point(
                min(max(start.x + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
                min(max(start.y + rng.uniform(-180.0, 180.0), 0.0), 1000.0),
            )
            batch.append(MotionPath(start, end))
        batches.append(batch)
    return batches


def _fleet_fingerprint(router: ShardRouter):
    return (
        router.grid.describe(),
        {path_id: shard.shard_id for path_id, shard in router.owners.items()},
        sorted(router.hotness.items()),
    )


def _elastic_migration_rows(repeats: int = 2):
    """Worst-boundary migration cost: stop-the-world vs ``--migration-budget``.

    Every row asks the same downtown-skewed 1200-record fleet for the same
    grow migration (split the hottest shard, 4 -> 5) and then drives the
    same churned boundaries.  The stop-the-world row pays the entire
    migration inside the boundary that requested it — the epoch-time spike;
    the budgeted rows warm the shadow fleet with ``budget + churn`` records
    per boundary and hand off atomically, so the worst single boundary pays
    a bounded slice of it.  Timed at the router so the table isolates the
    migration's own cost from the rest of the epoch; each row runs on a
    fresh fleet ``repeats`` times and keeps the fastest timings.  Every row
    must converge before the boundaries run out and end in the identical
    fleet state (the handoff-equals-stop-the-world contract, measured where
    the pacing is claimed).
    """
    churn = _migration_churn_batches()
    rows = []
    reference = None
    for label, budget in (("stop-the-world", 0), ("budget 120", 120), ("budget 240", 240)):
        best = None
        for _ in range(repeats):
            router = _migration_fleet(budget)
            try:
                target = router._forced_elastic_partition()  # same split each row
                started = time.perf_counter()
                router.rebalance(target)
                request_ms = (time.perf_counter() - started) * 1000.0
                boundary_ms = []
                warmed = 0
                for batch in churn:
                    for path in batch:
                        record = router.insert(path)
                        router.hotness.record_crossing(record.path_id, 0)
                    if router._migration is None:
                        continue
                    started = time.perf_counter()
                    router.maybe_rebalance()
                    boundary_ms.append((time.perf_counter() - started) * 1000.0)
                    warmed += router.last_migration_moved
                assert router._migration is None, f"{label}: migration did not converge"
                assert len(router.shards) == 5, f"{label}: fleet did not grow"
                if budget:
                    assert len(boundary_ms) >= 2 and warmed > MIGRATION_RECORDS // 2, (
                        f"{label}: budgeted migration was not actually paced"
                    )
                    moved, paying = warmed, len(boundary_ms)
                    worst = max(boundary_ms)
                    total = request_ms + sum(boundary_ms)
                else:
                    moved, paying = MIGRATION_RECORDS, 1
                    worst = total = request_ms
                fingerprint = _fleet_fingerprint(router)
                if reference is None:
                    reference = fingerprint
                else:
                    # Pacing moves state across more boundaries, never elsewhere.
                    assert fingerprint == reference, f"{label} fleet state diverged"
                measured = (moved, paying, worst, total)
                if best is None or measured[2] < best[2]:
                    best = measured
            finally:
                router.pipeline.close()
        rows.append((label, *best))
    # The pacing claim: no budgeted boundary pays the stop-the-world spike.
    stop_worst = rows[0][3]
    for label, _moved, _paying, worst, _total in rows[1:]:
        assert worst < stop_worst, (
            f"{label} worst boundary ({worst:.1f} ms) should undercut the "
            f"stop-the-world spike ({stop_worst:.1f} ms)"
        )
    return rows


def _churned_epoch_stream(turnover, seed=5, epochs=5, core=64):
    """An epoch stream with a tunable report-turnover fraction.

    A stable *core* of downtown reporters re-submits the identical
    ``(object, start, FSA)`` report every epoch — the repetition the delta
    pipeline's cross-epoch pool cache exists for.  Low turnover adds a
    rotating cast of transient visitors confined to a far-corner district,
    so only the corner shards' halo pools are dirtied each epoch; high
    turnover replaces most of the core itself with fresh reporters, dirtying
    every pool and leaving the cache nothing to reuse.
    """
    rng = random.Random(seed)

    def core_reporter(object_id):
        start = Point(rng.uniform(0.0, 700.0), rng.uniform(0.0, 700.0))
        centre = Point(
            min(max(start.x + rng.uniform(-80.0, 80.0), 0.0), 700.0),
            min(max(start.y + rng.uniform(-80.0, 80.0), 0.0), 700.0),
        )
        fsa = Rectangle.from_center(centre, rng.uniform(60.0, 120.0))
        return (object_id, start, fsa)

    def visitor(object_id):
        start = Point(rng.uniform(815.0, 985.0), rng.uniform(815.0, 985.0))
        return (object_id, start, Rectangle.from_center(start, rng.uniform(15.0, 35.0)))

    roster = [core_reporter(i) for i in range(core)]
    next_id = core
    if turnover <= 0.5:
        n_visitors = int(round(core * turnover / (1.0 - turnover)))
        replaced_per_epoch = 0
    else:
        n_visitors = 0
        replaced_per_epoch = int(core * turnover)
    stream = []
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        if replaced_per_epoch:
            roster = roster[:-replaced_per_epoch]
            while len(roster) < core:
                roster.append(core_reporter(next_id))
                next_id += 1
        visitors = []
        for _ in range(n_visitors):
            visitors.append(visitor(next_id))
            next_id += 1
        states = [
            ObjectState(
                object_id, start, boundary - 6, fsa.low, fsa.high, boundary - 1
            )
            for object_id, start, fsa in roster + visitors
        ]
        stream.append((boundary, states))
    return stream


def _dense_kernel_stream(seed=9, epochs=6, per_epoch=200):
    """A candidate-scan-heavy stream for the kernel comparison.

    Large overlapping FSAs over a coarse grid: cell blocks fill up with
    hundreds of endpoint entries and the epoch's overlap structure holds
    thousands of regions, so the per-entry python loops the columnar kernel
    replaces dominate the object-kernel epoch cost.
    """
    rng = random.Random(seed)
    stream = []
    for epoch in range(1, epochs + 1):
        states = []
        for _ in range(per_epoch):
            start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            centre = Point(
                min(max(start.x + rng.uniform(-120.0, 120.0), 0.0), 1000.0),
                min(max(start.y + rng.uniform(-120.0, 120.0), 0.0), 1000.0),
            )
            fsa = Rectangle.from_center(centre, rng.uniform(60.0, 150.0))
            states.append(
                ObjectState(
                    rng.randrange(per_epoch * 3),
                    start,
                    epoch * 10 - 5,
                    fsa.low,
                    fsa.high,
                    epoch * 10,
                )
            )
        stream.append((epoch * 10, states))
    return stream


def _kernel_rows():
    """Object vs columnar kernel cost on the dense stream, per topology.

    Every topology must produce bit-for-bit identical traces under both
    kernels (the columnar exactness contract, measured where the speedup is
    claimed), and the single-shard serial measurement — pure kernel work,
    no fleet overhead — must show at least a 2x columnar win.
    """
    stream = _dense_kernel_stream()
    rows = []
    serial_times = {}
    for label, num_shards, backend in (
        ("1-shard serial", 1, "serial"),
        ("16-shard serial", 16, "serial"),
        ("4-shard processes", 4, "processes"),
    ):
        reference = None
        for kernel in ("object", "columnar"):
            coordinator = Coordinator(
                CoordinatorConfig(
                    bounds=OVERLAP_BOUNDS,
                    window=1_000_000,
                    cells_per_axis=16,
                    num_shards=num_shards,
                    backend=backend,
                    kernel=kernel,
                )
            )
            trace = []
            started = time.perf_counter()
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                trace.append(coordinator.run_epoch(boundary).responses)
            elapsed_ms = (time.perf_counter() - started) / len(stream) * 1000.0
            trace.append(sorted(coordinator.hotness.items()))
            if reference is None:
                reference = trace
            else:
                assert trace == reference, f"kernels diverged on {label}"
            if label == "1-shard serial":
                serial_times[kernel] = elapsed_ms
            shipments = 0
            if backend == "processes" and coordinator.router is not None:
                shipments = coordinator.router.pipeline.backend.shm_shipments
            rows.append((label, kernel, elapsed_ms, shipments))
            coordinator.close()
    speedup = serial_times["object"] / serial_times["columnar"]
    assert speedup >= 2.0, (
        f"columnar kernel must be at least 2x faster than object on the "
        f"dense single-shard workload, measured {speedup:.2f}x"
    )
    return rows, speedup


def _epoch_mode_rows():
    """Full vs delta epoch cost on low-churn and high-churn workloads.

    Each row drives a 4x4 fleet over the same stream in one ``epoch_mode``,
    timing the epoch pipeline plus one corridor query per epoch (the serving
    cadence).  Traces must be bit-for-bit identical between modes — the
    differential contract measured where the speedup is claimed — and the
    delta rows carry the counters that account for the savings: halo pools
    reused verbatim vs rebuilt, corridor chains reused vs re-welded.
    """
    rows = []
    low_churn_times = {}
    for workload, turnover in (("low churn 10%", 0.1), ("high churn 90%", 0.9)):
        stream = _churned_epoch_stream(turnover)
        reference = None
        for mode in ("full", "delta"):
            coordinator = Coordinator(
                CoordinatorConfig(
                    bounds=OVERLAP_BOUNDS,
                    window=1_000_000,
                    cells_per_axis=32,
                    num_shards=16,
                    epoch_mode=mode,
                )
            )
            trace = []
            started = time.perf_counter()
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                outcome = coordinator.run_epoch(boundary)
                trace.append((outcome.responses, coordinator.hot_corridors()))
            elapsed_ms = (time.perf_counter() - started) / len(stream) * 1000.0
            trace.append(sorted(coordinator.hotness.items()))
            if reference is None:
                reference = trace
            else:
                # The per-epoch differential contract, at benchmark scale.
                assert trace == reference, f"delta diverged from full on {workload}"
            if turnover <= 0.5:
                low_churn_times[mode] = elapsed_ms
            stats = coordinator.shard_statistics()
            rows.append(
                (
                    workload,
                    mode,
                    elapsed_ms,
                    stats["pools_reused"],
                    stats["pools_rebuilt"],
                    stats["chains_reused"],
                    stats["chains_rewelded"],
                )
            )
            coordinator.close()
    # The delta pipeline's headline claim: on a low-churn epoch the cost is
    # proportional to what changed, not to the hot-set size.
    speedup = low_churn_times["full"] / low_churn_times["delta"]
    assert speedup >= 2.0, (
        f"delta mode must be at least 2x faster than full on the low-churn "
        f"workload, measured {speedup:.2f}x"
    )
    low_churn_delta = rows[1]
    assert low_churn_delta[3] > low_churn_delta[4], (
        "low churn should reuse more halo pools than it rebuilds"
    )
    return rows, speedup


@pytest.mark.benchmark(group="sharding")
def test_sharding_scaling(benchmark, experiment_scale, record_result):
    shard_results = {}
    backend_results = {}

    def run_all():
        for num_shards in SHARD_COUNTS:
            shard_results[num_shards] = _run(num_shards, experiment_scale)
        for num_shards in BACKEND_SHARD_COUNTS:
            for backend in BACKENDS[1:]:
                backend_results[(num_shards, backend)] = _run(
                    num_shards, experiment_scale, backend
                )
        return shard_results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'shards':>7} {'time/epoch s':>14} {'index size':>12} "
        f"{'top-k score':>12} {'max/mean shard load':>20}"
    )
    lines = [header, "-" * len(header)]
    for num_shards, result in shard_results.items():
        summary = result.summary()
        stats = result.coordinator.shard_statistics()
        balance = (
            stats["max_shard_records"] / stats["mean_shard_records"]
            if stats["mean_shard_records"]
            else 0.0
        )
        lines.append(
            f"{num_shards:>7d} {summary['mean_processing_seconds']:>14.4f} "
            f"{summary['final_index_size']:>12.0f} {summary['mean_top_k_score']:>12.1f} "
            f"{balance:>20.2f}"
        )

    # Backend comparison: serial vs worker-pool pipelines on the same fleet.
    lines.append("")
    lines.append(f"backend comparison (cpu cores: {os.cpu_count()})")
    backend_header = (
        f"{'shards':>7} {'backend':>10} {'time/epoch s':>14} {'speedup vs serial':>18}"
    )
    lines.append(backend_header)
    lines.append("-" * len(backend_header))
    for num_shards in BACKEND_SHARD_COUNTS:
        serial_time = shard_results[num_shards].summary()["mean_processing_seconds"]
        lines.append(f"{num_shards:>7d} {'serial':>10} {serial_time:>14.4f} {1.0:>18.2f}")
        for backend in BACKENDS[1:]:
            summary = backend_results[(num_shards, backend)].summary()
            backend_time = summary["mean_processing_seconds"]
            speedup = serial_time / backend_time if backend_time else 0.0
            lines.append(
                f"{num_shards:>7d} {backend:>10} {backend_time:>14.4f} {speedup:>18.2f}"
            )

    # Overlap-structure build: the pre-PR-3 global build vs the shard-local
    # halo builds on every backend (one synthetic 240-state epoch, 4x4 fleet).
    lines.append("")
    lines.append("overlap-structure build (one 240-state epoch, 4x4 fleet, adaptive halo)")
    overlap_header = (
        f"{'mode':>12} {'backend':>10} {'build ms':>10} {'pools':>6} {'regions':>8}"
    )
    lines.append(overlap_header)
    lines.append("-" * len(overlap_header))
    overlap_rows, cache_note = _overlap_build_rows()
    for mode, backend, elapsed_ms, pools, regions in overlap_rows:
        lines.append(
            f"{mode:>12} {backend:>10} {elapsed_ms:>10.3f} {pools:>6d} {regions:>8d}"
        )
    lines.append(cache_note)

    # Corridor stitching: the global reference stitch vs the distributed
    # per-shard weld passes + merge on every backend (identical hot set,
    # identical corridors — the table records the cost of distribution).
    lines.append("")
    lines.append("corridor stitching (~600 chained hot fragments, 4x4 fleet)")
    stitch_header = (
        f"{'mode':>12} {'backend':>10} {'stitch ms':>10} {'fragments':>10} "
        f"{'corridors':>10} {'multi-seg':>10} {'boundary welds':>15}"
    )
    lines.append(stitch_header)
    lines.append("-" * len(stitch_header))
    for mode, backend, elapsed_ms, fragments, corridors, multi, welds in _stitch_rows():
        lines.append(
            f"{mode:>12} {backend:>10} {elapsed_ms:>10.3f} {fragments:>10d} "
            f"{corridors:>10d} {multi:>10d} {welds:>15d}"
        )

    # Load-adaptive rebalancing: shard-load imbalance before/after swapping
    # the uniform grid for the kd partition on a skewed downtown workload
    # (identical answers asserted inside _rebalance_rows).
    lines.append("")
    lines.append(
        "shard-load rebalancing (skewed downtown workload, 4x4 fleet, "
        "uniform vs --partition kd)"
    )
    rebalance_header = (
        f"{'partition':>10} {'imbalance max/mean':>19} {'max records':>12} "
        f"{'mean records':>13} {'rebalances':>11} {'time/epoch ms':>14}"
    )
    lines.append(rebalance_header)
    lines.append("-" * len(rebalance_header))
    for label, imbalance, max_records, mean_records, rebalances, elapsed_ms in _rebalance_rows():
        lines.append(
            f"{label:>10} {imbalance:>19.2f} {max_records:>12.0f} "
            f"{mean_records:>13.1f} {rebalances:>11.0f} {elapsed_ms:>14.3f}"
        )
    lines.append(
        "(answers identical across rows; imbalance is what serialises a parallel "
        "fleet — the single-core container shows kd's denser downtown cells as "
        "extra halo work instead of the multi-core win)"
    )

    # Elastic migration pacing: the worst-boundary cost of a stop-the-world
    # grow migration vs the same migration spread over several boundaries by
    # --migration-budget (identical final fleet state, convergence and the
    # pacing claim itself asserted inside _elastic_migration_rows).
    lines.append("")
    lines.append(
        f"elastic migration pacing (grow 4->5, {MIGRATION_RECORDS}-record "
        f"downtown-skewed fleet, {MIGRATION_CHURN} churn inserts/boundary, "
        "identical final state)"
    )
    elastic_header = (
        f"{'migration':>15} {'records moved':>14} {'paying boundaries':>18} "
        f"{'worst boundary ms':>18} {'total ms':>9}"
    )
    lines.append(elastic_header)
    lines.append("-" * len(elastic_header))
    elastic_rows = _elastic_migration_rows()
    for label, moved, paying, worst_ms, total_ms in elastic_rows:
        lines.append(
            f"{label:>15} {moved:>14d} {paying:>18d} "
            f"{worst_ms:>18.3f} {total_ms:>9.3f}"
        )
    spike_cut = elastic_rows[0][3] / min(row[3] for row in elastic_rows[1:])
    lines.append(
        f"(worst-boundary spike cut {spike_cut:.1f}x by pacing: stop-the-world "
        "pays the whole migration inside the boundary that requested it, while "
        "a budgeted migration warms budget + churn records per boundary behind "
        "double-read writes and hands off atomically — the total cost is "
        "similar, the spike is bounded)"
    )

    # Incremental epoch pipeline: full vs --epoch-mode delta on a stable-core
    # workload with 10% vs 90% report turnover (identical answers asserted
    # inside _epoch_mode_rows, along with the >=2x low-churn speedup).
    lines.append("")
    lines.append(
        "incremental epoch pipeline (full vs --epoch-mode delta, 4x4 fleet, "
        "identical answers)"
    )
    epoch_mode_header = (
        f"{'workload':>15} {'mode':>6} {'time/epoch ms':>14} "
        f"{'pools reused':>13} {'rebuilt':>8} {'chains reused':>14} {'rewelded':>9}"
    )
    lines.append(epoch_mode_header)
    lines.append("-" * len(epoch_mode_header))
    epoch_mode_rows, low_churn_speedup = _epoch_mode_rows()
    for workload, mode, elapsed_ms, reused, rebuilt, chains, rewelded in epoch_mode_rows:
        lines.append(
            f"{workload:>15} {mode:>6} {elapsed_ms:>14.3f} "
            f"{reused:>13d} {rebuilt:>8d} {chains:>14d} {rewelded:>9d}"
        )
    lines.append(
        f"(low-churn delta speedup: {low_churn_speedup:.2f}x — epoch cost tracks "
        "the delta, not the hot set; high churn leaves nothing to reuse and "
        "shows the cache bookkeeping as overhead, which is why full mode "
        "stays available)"
    )

    # Columnar kernel comparison: the object reference vs the vectorized
    # SoA kernels (and the shared-memory shipment transport on the process
    # rows), identical answers asserted inside _kernel_rows.
    lines.append("")
    lines.append(
        "geometry kernels (--kernel object vs columnar, dense 200-state "
        "epochs, identical answers)"
    )
    kernel_header = (
        f"{'topology':>18} {'kernel':>9} {'time/epoch ms':>14} {'shm shipments':>14}"
    )
    lines.append(kernel_header)
    lines.append("-" * len(kernel_header))
    kernel_rows, kernel_speedup = _kernel_rows()
    for label, kernel, elapsed_ms, shipments in kernel_rows:
        lines.append(
            f"{label:>18} {kernel:>9} {elapsed_ms:>14.3f} {shipments:>14d}"
        )
    lines.append(
        f"(single-shard columnar speedup: {kernel_speedup:.2f}x — the candidate "
        "scans, overlap queries and cell upkeep run as numpy column kernels; "
        "process rows additionally ship epochs through shared memory instead "
        "of pickling)"
    )
    record_result("sharding_scaling", "\n".join(lines))

    # Scale-out must never change the answer: identical top-k everywhere,
    # for every shard count and every backend.
    baseline = shard_results[1]
    for num_shards in SHARD_COUNTS[1:]:
        assert shard_results[num_shards].top_k_paths() == baseline.top_k_paths()
        assert shard_results[num_shards].top_k_score() == baseline.top_k_score()
    for result in backend_results.values():
        assert result.top_k_paths() == baseline.top_k_paths()
        assert result.top_k_score() == baseline.top_k_score()
    # The fleet actually spreads the load over several shards.
    stats = shard_results[16].coordinator.shard_statistics()
    assert stats["num_shards"] == 16
    if stats["total_records"]:
        assert stats["max_shard_records"] < stats["total_records"]


@pytest.mark.slow
@pytest.mark.benchmark(group="sharding")
def test_sharding_scaling_large_population(benchmark, experiment_scale, record_result):
    """Heavier differential run (4x the scaled population); opt in via -m slow.

    Covers every backend on the 4x4 fleet as well — the larger epochs amortise
    pool coordination, so this is the configuration where multi-core machines
    show the candidate-pass and conflict-group parallelism most clearly.
    """
    results = {}
    backend_results = {}

    def run_all():
        for num_shards in SHARD_COUNTS:
            sharded = scaled_simulation_config(
                scale=experiment_scale,
                num_objects=80000,
                num_shards=num_shards,
                run_dp_baseline=False,
                run_naive_baseline=False,
            )
            results[num_shards] = HotPathSimulation(sharded).run()
        for backend in BACKENDS[1:]:
            sharded = scaled_simulation_config(
                scale=experiment_scale,
                num_objects=80000,
                num_shards=16,
                backend=backend,
                run_dp_baseline=False,
                run_naive_baseline=False,
            )
            backend_results[backend] = HotPathSimulation(sharded).run()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"shards={n} time/epoch={r.summary()['mean_processing_seconds']:.4f}s "
        f"index={r.summary()['final_index_size']:.0f}"
        for n, r in results.items()
    ]
    serial_time = results[16].summary()["mean_processing_seconds"]
    for backend, result in backend_results.items():
        backend_time = result.summary()["mean_processing_seconds"]
        speedup = serial_time / backend_time if backend_time else 0.0
        lines.append(
            f"shards=16 backend={backend} time/epoch={backend_time:.4f}s "
            f"speedup={speedup:.2f} (cores={os.cpu_count()})"
        )
    record_result("sharding_scaling_large", "\n".join(lines))
    for num_shards in SHARD_COUNTS[1:]:
        assert results[num_shards].top_k_paths() == results[1].top_k_paths()
    for result in backend_results.values():
        assert result.top_k_paths() == results[1].top_k_paths()
