"""Sharding benchmark — coordinator scale-out across shard counts.

Runs the same scaled workload against a single-shard coordinator and against
2x2 and 4x4 shard fleets.  Sharding is behaviour-identical by construction
(see ``tests/test_sharding_equivalence.py``), so the benchmark asserts the
discovered top-k is bit-for-bit equal across shard counts and records the
per-epoch coordinator time plus the fleet's load balance.  On a single Python
process the fleet pays a small routing overhead; the numbers here are the
baseline for the async-shard-worker follow-on, where per-shard passes run in
parallel.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import scaled_simulation_config
from repro.simulation.engine import HotPathSimulation

SHARD_COUNTS = (1, 4, 16)


def _run(num_shards, experiment_scale):
    config = scaled_simulation_config(
        scale=experiment_scale,
        num_shards=num_shards,
        run_dp_baseline=False,
        run_naive_baseline=False,
    )
    return HotPathSimulation(config).run()


@pytest.mark.benchmark(group="sharding")
def test_sharding_scaling(benchmark, experiment_scale, record_result):
    results = benchmark.pedantic(
        lambda: {n: _run(n, experiment_scale) for n in SHARD_COUNTS},
        rounds=1,
        iterations=1,
    )

    header = (
        f"{'shards':>7} {'time/epoch s':>14} {'index size':>12} "
        f"{'top-k score':>12} {'max/mean shard load':>20}"
    )
    lines = [header, "-" * len(header)]
    for num_shards, result in results.items():
        summary = result.summary()
        stats = result.coordinator.shard_statistics()
        balance = (
            stats["max_shard_records"] / stats["mean_shard_records"]
            if stats["mean_shard_records"]
            else 0.0
        )
        lines.append(
            f"{num_shards:>7d} {summary['mean_processing_seconds']:>14.4f} "
            f"{summary['final_index_size']:>12.0f} {summary['mean_top_k_score']:>12.1f} "
            f"{balance:>20.2f}"
        )
    record_result("sharding_scaling", "\n".join(lines))

    # Scale-out must never change the answer: identical top-k everywhere.
    baseline = results[1]
    for num_shards in SHARD_COUNTS[1:]:
        assert results[num_shards].top_k_paths() == baseline.top_k_paths()
        assert results[num_shards].top_k_score() == baseline.top_k_score()
    # The fleet actually spreads the load over several shards.
    stats = results[16].coordinator.shard_statistics()
    assert stats["num_shards"] == 16
    if stats["total_records"]:
        assert stats["max_shard_records"] < stats["total_records"]


@pytest.mark.slow
@pytest.mark.benchmark(group="sharding")
def test_sharding_scaling_large_population(benchmark, experiment_scale, record_result):
    """Heavier differential run (4x the scaled population); opt in via -m slow."""
    results = {}

    def run_all():
        for num_shards in SHARD_COUNTS:
            sharded = scaled_simulation_config(
                scale=experiment_scale,
                num_objects=80000,
                num_shards=num_shards,
                run_dp_baseline=False,
                run_naive_baseline=False,
            )
            results[num_shards] = HotPathSimulation(sharded).run()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"shards={n} time/epoch={r.summary()['mean_processing_seconds']:.4f}s "
        f"index={r.summary()['final_index_size']:.0f}"
        for n, r in results.items()
    ]
    record_result("sharding_scaling_large", "\n".join(lines))
    for num_shards in SHARD_COUNTS[1:]:
        assert results[num_shards].top_k_paths() == results[1].top_k_paths()
