#!/usr/bin/env python3
"""Targeted advertising scenario from the paper's introduction.

A sporting event draws subscribers towards a venue; most of them approach it
along a handful of corridors (ring roads, metro exits, main avenues).  The
mobile-phone carrier wants to know, on-line, which approach corridors are hot
right now so a partner store next to one of them can push a promotion to
passers-by.

The example feeds the converging-crowd trajectories through the full
RayTrace + SinglePath pipeline (no simulation engine, so you can see the
protocol explicitly) and then ranks the discovered motion paths by how close
they are to the advertised store.

Run it with::

    python examples/targeted_advertising.py
"""

from __future__ import annotations

from typing import Dict

from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import Trajectory
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.analysis.render import render_hot_paths
from repro.workload.scenarios import converging_event_trajectories

VENUE = Point(0.0, 0.0)
STORE = Point(450.0, 80.0)   # a kiosk just off the eastern approach corridor
TOLERANCE = 25.0
EPOCH = 5


def replay(trajectories: Dict[int, Trajectory], coordinator: Coordinator) -> None:
    """Drive the client/coordinator protocol over recorded trajectories."""
    config = RayTraceConfig(TOLERANCE)
    filters: Dict[int, RayTraceFilter] = {}
    end_time = max(t.end_time for t in trajectories.values())
    for timestamp in range(end_time + 1):
        for object_id, trajectory in trajectories.items():
            if not trajectory.covers_time(timestamp):
                continue
            measurement = trajectory[timestamp - trajectory.start_time]
            if object_id not in filters:
                filters[object_id] = RayTraceFilter(object_id, measurement, config)
                continue
            state = filters[object_id].observe(measurement)
            if state is not None:
                coordinator.submit_state(state)
        if timestamp and timestamp % EPOCH == 0:
            for response in coordinator.run_epoch(timestamp).responses:
                follow_up = filters[response.object_id].receive_response(response)
                if follow_up is not None:
                    coordinator.submit_state(follow_up)
    # Final flush of the still-open safe areas.
    for filt in filters.values():
        if not filt.waiting and filt.fsa_timestamp > filt.ssa_start.timestamp:
            coordinator.submit_state(filt.current_state())
    coordinator.run_epoch(end_time + 1)


def main() -> None:
    print("Simulating 60 subscribers converging on the stadium along 4 corridors...")
    trajectories = converging_event_trajectories(
        num_objects=60,
        venue=VENUE,
        spawn_radius=2000.0,
        duration=80,
        num_corridors=4,
        seed=11,
    )

    bounds = Rectangle(Point(-2500.0, -2500.0), Point(2500.0, 2500.0))
    coordinator = Coordinator(CoordinatorConfig(bounds=bounds, window=500, cells_per_axis=48))
    replay(trajectories, coordinator)

    hot_paths = coordinator.hot_paths()
    print(f"\nDiscovered {len(hot_paths)} motion paths; top-10 by hotness:")
    for rank, scored in enumerate(coordinator.top_k(10), start=1):
        midpoint = scored.path.start.midpoint(scored.path.end)
        print(
            f"  {rank:2d}. hotness={scored.hotness:<3d} length={scored.path.length:7.1f} "
            f"midpoint=({midpoint.x:8.1f}, {midpoint.y:8.1f})"
        )

    # Which hot paths pass near the advertised store?
    near_store = [
        (record, hotness)
        for record, hotness in hot_paths
        if hotness >= 2
        and min(
            record.path.start.euclidean_distance_to(STORE),
            record.path.end.euclidean_distance_to(STORE),
            record.path.point_at(0.5).euclidean_distance_to(STORE),
        )
        <= 300.0
    ]
    audience = sum(hotness for _, hotness in near_store)
    print(f"\nHot paths within 300 m of the store at ({STORE.x:.0f}, {STORE.y:.0f}): {len(near_store)}")
    print(f"Estimated promotion audience (sum of hotness): {audience}")

    print("\nDensity map of the discovered approach corridors (venue at the centre):")
    print(render_hot_paths(hot_paths, bounds, width=72, height=30))


if __name__ == "__main__":
    main()
