#!/usr/bin/env python3
"""Emergency evacuation monitoring scenario from the paper's introduction.

A fire breaks out and residents evacuate along whichever roads are passable.
The authorities track their phones and need the popular escape routes *now*,
with stale information dropping out of a short sliding window, so ambulances
and fire engines can be positioned along the routes people actually use.

The example highlights two aspects of the framework:

* the sliding window — the escape routes used early in the evacuation cool
  down once people stop using them;
* uncertainty-aware filtering — phone positions are noisy, so the clients run
  the (epsilon, delta) variant of RayTrace.

Run it with::

    python examples/evacuation_monitoring.py
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import Trajectory, UncertainTimePoint
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.analysis.export import paths_to_wkt
from repro.workload.scenarios import evacuation_trajectories

DANGER_ZONE = Point(0.0, 0.0)
TOLERANCE = 30.0
DELTA = 0.1           # allow a 10% failure probability per reported position
SENSOR_SIGMA = 5.0    # metres of GPS noise reported by the handsets
WINDOW = 60           # timestamps: only recent crossings count
EPOCH = 5


def add_sensor_noise(trajectories: Dict[int, Trajectory], seed: int = 3) -> Dict[int, list]:
    """Turn exact trajectories into noisy uncertain measurements."""
    rng = random.Random(seed)
    noisy: Dict[int, list] = {}
    for object_id, trajectory in trajectories.items():
        measurements = []
        for timepoint in trajectory:
            measurements.append(
                UncertainTimePoint(
                    Point(
                        timepoint.x + rng.gauss(0.0, SENSOR_SIGMA),
                        timepoint.y + rng.gauss(0.0, SENSOR_SIGMA),
                    ),
                    timepoint.timestamp,
                    SENSOR_SIGMA,
                    SENSOR_SIGMA,
                )
            )
        noisy[object_id] = measurements
    return noisy


def main() -> None:
    print("Simulating two evacuation waves fleeing the danger zone...")
    # Wave 1 evacuates immediately; wave 2 starts 40 timestamps later and uses
    # different (fresher) escape routes because the fire has spread.
    wave_1 = evacuation_trajectories(
        num_objects=25, danger_zone=DANGER_ZONE, evacuation_radius=2500.0,
        num_escape_routes=3, duration=60, seed=1,
    )
    wave_2_raw = evacuation_trajectories(
        num_objects=25, danger_zone=DANGER_ZONE, evacuation_radius=2500.0,
        num_escape_routes=2, duration=60, seed=2,
    )
    # Shift wave 2 in time and renumber its objects.
    wave_2: Dict[int, Trajectory] = {}
    for object_id, trajectory in wave_2_raw.items():
        shifted = Trajectory(object_id + 1000)
        for timepoint in trajectory:
            shifted.append(type(timepoint)(timepoint.point, timepoint.timestamp + 40))
        wave_2[object_id + 1000] = shifted

    trajectories = {**wave_1, **wave_2}
    measurements = add_sensor_noise(trajectories)

    bounds = Rectangle(Point(-3000.0, -3000.0), Point(3000.0, 3000.0))
    coordinator = Coordinator(CoordinatorConfig(bounds=bounds, window=WINDOW, cells_per_axis=48))
    config = RayTraceConfig(TOLERANCE, DELTA)
    filters: Dict[int, RayTraceFilter] = {}

    end_time = max(m[-1].timestamp for m in measurements.values())
    checkpoints = {40, 70, end_time + 1}
    for timestamp in range(end_time + 2):
        for object_id, stream in measurements.items():
            offset = timestamp - stream[0].timestamp
            if offset < 0 or offset >= len(stream):
                continue
            measurement = stream[offset]
            if object_id not in filters:
                filters[object_id] = RayTraceFilter(object_id, measurement, config)
                continue
            state = filters[object_id].observe(measurement)
            if state is not None:
                coordinator.submit_state(state)
        if timestamp and timestamp % EPOCH == 0:
            for response in coordinator.run_epoch(timestamp).responses:
                follow_up = filters[response.object_id].receive_response(response)
                if follow_up is not None:
                    coordinator.submit_state(follow_up)
        if timestamp in checkpoints:
            top = coordinator.top_k(5)
            print(f"\n[t={timestamp:3d}] hottest escape routes "
                  f"({coordinator.index_size()} paths in the index):")
            for rank, scored in enumerate(top, start=1):
                heading = scored.path.end
                print(
                    f"  {rank}. hotness={scored.hotness:<3d} towards ({heading.x:7.1f}, {heading.y:7.1f})"
                    f"  length={scored.path.length:7.1f}"
                )

    print("\nWKT export of the final hot paths (load into any GIS viewer):")
    final_hot = [(record, hotness) for record, hotness in coordinator.hot_paths() if hotness >= 3]
    for line in paths_to_wkt(final_hot):
        print(" ", line)


if __name__ == "__main__":
    main()
