#!/usr/bin/env python3
"""Quickstart: run a small hot-motion-path simulation end to end.

This example builds a synthetic road network, simulates a few hundred moving
objects whose RayTrace filters report to a central coordinator, and prints the
top-10 hottest motion paths together with the communication savings achieved
by the client-side filtering.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import HotPathSimulation, SimulationConfig
from repro.network.generator import NetworkConfig


def main() -> None:
    config = SimulationConfig(
        num_objects=500,
        tolerance=10.0,          # epsilon, metres
        window=100,              # sliding window W, timestamps
        epoch_length=10,         # Lambda, timestamps between coordinator epochs
        duration=150,            # total simulated timestamps
        agility=0.3,             # fraction of objects moving per timestamp
        network_config=NetworkConfig(area_size=4000.0, grid_nodes_per_axis=10),
        seed=7,
    )

    print("Running hot motion path simulation "
          f"({config.num_objects} objects, {config.duration} timestamps)...")
    result = HotPathSimulation(config).run()

    summary = result.summary()
    print()
    print(f"Motion paths in the index:      {summary['final_index_size']:.0f}")
    print(f"Mean index size per epoch:      {summary['mean_index_size']:.1f}")
    print(f"Mean top-10 score per epoch:    {summary['mean_top_k_score']:.1f}")
    print(f"Coordinator time per epoch:     {summary['mean_processing_seconds'] * 1000:.2f} ms")
    print(f"RayTrace uplink messages:       {summary['uplink_messages']:.0f}")
    print(f"Naive uplink messages:          {summary['naive_uplink_messages']:.0f}")
    print(f"Messages saved by filtering:    {summary['message_reduction_versus_naive'] * 100:.1f}%")

    print("\nTop-10 hottest motion paths (hotness x length = score):")
    for rank, scored in enumerate(result.top_k_paths(10), start=1):
        start, end = scored.path.start, scored.path.end
        print(
            f"  {rank:2d}. ({start.x:8.1f}, {start.y:8.1f}) -> ({end.x:8.1f}, {end.y:8.1f})"
            f"   hotness={scored.hotness:<3d} length={scored.path.length:8.1f} score={scored.score:10.1f}"
        )


if __name__ == "__main__":
    main()
