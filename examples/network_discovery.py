#!/usr/bin/env python3
"""Network discovery: reproduce the qualitative result of Figures 9 and 10.

The algorithms never see the road network — they only see noisy position
streams — yet the motion paths they accumulate trace out the network's
arterial structure.  This example runs the paper-style workload on a synthetic
network, renders the ground-truth network and the discovered hot paths side by
side as ASCII density maps, and reports how much of the network the discovery
covers.

Run it with::

    python examples/network_discovery.py
"""

from __future__ import annotations

from repro.analysis.export import write_csv
from repro.analysis.render import AsciiMapRenderer
from repro.experiments.config import ExperimentScale
from repro.experiments.figure9 import run_figure9, run_figure10


def main() -> None:
    scale = ExperimentScale(population=0.02, duration=0.6, network_nodes_per_axis=10)

    print("Running the Figure 9 workload (all hot motion paths in the window)...")
    report = run_figure9(scale=scale, seed=13, map_width=72, map_height=30)

    print("\nGround-truth road network (hidden from the algorithms):")
    print(report.network_map)
    print("\nMotion paths discovered by SinglePath (brightness = hotness):")
    print(report.discovered_map)
    print(f"\nDiscovered paths: {len(report.hot_paths)}")
    print(f"Network cells covered by discovered paths: {report.coverage_fraction() * 100:.1f}%")

    csv_path = write_csv(report.hot_paths, "figure9_hot_paths.csv")
    print(f"CSV export written to {csv_path}")

    print("\nRunning the Figure 10 zoom (top-20 hottest paths in the city centre)...")
    centre = run_figure10(scale=scale, seed=13, k=20, map_width=60, map_height=24)
    print(centre.discovered_map)
    print(f"Top paths rendered: {len(centre.hot_paths)}")


if __name__ == "__main__":
    main()
